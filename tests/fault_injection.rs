//! The paper's progress claims under deterministic adversity (DESIGN.md
//! §11): a [`FaultPlan`] stalls, preempts, or permanently kills chosen
//! processes at labelled *fault points* inside each algorithm's critical
//! windows, and the virtual-time watchdog turns "non-blocking" from prose
//! into an oracle. The headline pair, swept across ≥ 16 perturbed
//! schedules each:
//!
//! * killing a process inside the MS queue's enqueue window leaves every
//!   survivor able to finish, the queue drainable, and the recorded
//!   history linearizable (the victim's linearized-but-unacknowledged
//!   enqueue is admitted as a pending operation, Section 3.2 style);
//! * the *same* death inside the single-lock queue's critical section is
//!   detected by the watchdog as permanently blocking every survivor —
//!   the expected outcome for a blocking algorithm, asserted rather than
//!   hung.

use std::sync::{Arc, Mutex};

use ms_queues::linearize::{Event, Operation};
use ms_queues::{
    is_linearizable_queue, run_simulated_faulted, run_simulated_recovered, run_simulated_repaired,
    schedule_sweep, Algorithm, AtomicWord, BlockedKind, FaultPlan, History, MemBudget,
    NativePlatform, Platform, Recorder, RecoveryPolicy, SimConfig, Simulation, WorkloadConfig,
};

fn tiny() -> WorkloadConfig {
    WorkloadConfig {
        pairs_total: 240,
        other_work_ns: 500,
        capacity: 256,
        mem_budget: None,
    }
}

/// Stalls in the enqueue critical window delay but never corrupt: every
/// algorithm (blocking ones included — the victim *resumes*) completes
/// the full workload and leaves an empty queue.
#[test]
fn stalls_in_the_critical_window_delay_but_never_corrupt() {
    for algorithm in Algorithm::ALL {
        let plan = FaultPlan::new()
            .stall_at_label(0, algorithm.enqueue_fault_label(), 0, 200_000)
            .stall_at_label(0, algorithm.enqueue_fault_label(), 4, 200_000);
        let point = run_simulated_faulted(
            algorithm,
            SimConfig {
                processors: 3,
                ..SimConfig::default()
            },
            &tiny(),
            plan,
        );
        assert_eq!(point.stalls_injected, 2, "{algorithm}: stalls fired");
        assert!(point.killed.is_empty(), "{algorithm}");
        assert!(point.survivors_completed(), "{algorithm}");
        assert_eq!(point.pairs_completed, 240, "{algorithm}");
        assert_eq!(point.drained, Some(0), "{algorithm}: queue empty after");
    }
}

/// A preemption storm parked on the MS enqueue window — the
/// multiprogrammed scheduler landing on the worst instruction over and
/// over (the paper's Figures 4–5 regime) — is absorbed without loss.
#[test]
fn preempt_storm_on_the_ms_window_is_absorbed() {
    let point = run_simulated_faulted(
        Algorithm::NewNonBlocking,
        SimConfig {
            processors: 2,
            processes_per_processor: 2,
            ..SimConfig::default()
        },
        &tiny(),
        FaultPlan::new().preempt_storm(0, "msq:enq:window", 16),
    );
    assert_eq!(point.preempts_injected, 16);
    assert!(point.killed.is_empty());
    assert!(point.survivors_completed());
    assert_eq!(point.pairs_completed, 240);
    assert_eq!(point.drained, Some(0));
}

/// The victim's first enqueue value in [`kill_and_record`] workloads:
/// pid 0, iteration 0.
const VICTIM_VALUE: u64 = 0;

/// Runs 3 simulated processes over the MS queue with pid 0 killed at its
/// first pass through the enqueue critical window (node linked, Tail
/// lagging), records the surviving history, drains the queue, and
/// returns the history with the victim's linearized-but-unacknowledged
/// enqueue admitted as a pending operation (interval `[0, u64::MAX]`,
/// concurrent with everything) if its value ever surfaced.
fn kill_and_record(cfg: SimConfig) -> History {
    let seed = cfg.seed;
    let sim = Simulation::with_faults(cfg, FaultPlan::new().kill_at_label(0, "msq:enq:window", 0));
    let queue = Algorithm::NewNonBlocking.build(&sim.platform(), 64);
    let recorder = Recorder::new();
    let handles: Vec<_> = (0..3).map(|p| Some(recorder.handle(p))).collect();
    let handles = Arc::new(Mutex::new(handles));
    let report = sim.run({
        let queue = Arc::clone(&queue);
        let handles = Arc::clone(&handles);
        move |info| {
            let mut handle = handles.lock().unwrap()[info.pid].take().unwrap();
            for i in 0..2_u64 {
                let value = ((info.pid as u64) << 8) | i;
                handle.enqueue(&*queue, value).unwrap();
                handle.dequeue(&*queue);
            }
        }
    });
    assert_eq!(report.killed, vec![0], "seed {seed:#x}");
    assert!(
        report.blocked.is_empty(),
        "seed {seed:#x}: watchdog flagged survivors of a non-blocking queue: {:?}",
        report.blocked
    );
    // The dead process must not block the drain either: the queue is
    // fully operable from the outside afterwards.
    let mut drainer = recorder.handle(3);
    while drainer.dequeue(&*queue).is_some() {}
    drop(drainer);

    let mut events = recorder.finish().events().to_vec();
    let victim_surfaced = events
        .iter()
        .any(|e| e.operation == Operation::Dequeue(Some(VICTIM_VALUE)));
    let victim_recorded = events
        .iter()
        .any(|e| e.operation == Operation::Enqueue(VICTIM_VALUE));
    if victim_surfaced && !victim_recorded {
        events.push(Event {
            process: 0,
            operation: Operation::Enqueue(VICTIM_VALUE),
            invoked_at: 0,
            returned_at: u64::MAX,
        });
    }
    History::from_events(events)
}

/// **Acceptance, part 1**: kill a process mid-enqueue on the MS queue
/// across 16 perturbed schedules. Survivors always finish, the queue
/// always drains, and every recorded history — victim's pending enqueue
/// included — passes the fast checks and the exhaustive Wing–Gong
/// linearizability search.
#[test]
fn kill_mid_enqueue_on_ms_queue_survivors_linearize_across_16_seeds() {
    let base = SimConfig {
        processors: 3,
        quantum_ns: 60_000,
        watchdog_ns: 50_000_000,
        ..SimConfig::default()
    };
    schedule_sweep(base, 16, |cfg| {
        let seed = cfg.seed;
        let history = kill_and_record(cfg);
        assert!(
            history.check_queue_safety().is_empty(),
            "seed {seed:#x}: fast checks failed: {:?}",
            history.events()
        );
        assert!(
            is_linearizable_queue(history.events()),
            "seed {seed:#x}: faulted history not linearizable: {:?}",
            history.events()
        );
    });
}

/// **Acceptance, part 2**: the *same* fault — death at the first enqueue
/// critical window — on the single-lock queue. Across 16 perturbed
/// schedules the victim dies holding the lock, and the virtual-time
/// watchdog must report every survivor permanently blocked (and the
/// post-mortem queue unapproachable: no drain is attempted).
#[test]
fn kill_mid_enqueue_on_single_lock_watchdog_flags_survivors_across_16_seeds() {
    let base = SimConfig {
        processors: 3,
        quantum_ns: 60_000,
        watchdog_ns: 50_000_000,
        ..SimConfig::default()
    };
    schedule_sweep(base, 16, |cfg| {
        let seed = cfg.seed;
        let point = run_simulated_faulted(
            Algorithm::SingleLock,
            cfg,
            &tiny(),
            FaultPlan::new().kill_at_label(0, "single-lock:enq:locked", 0),
        );
        assert_eq!(point.killed, vec![0], "seed {seed:#x}");
        assert!(
            !point.survivors_completed(),
            "seed {seed:#x}: a single-lock death should block survivors"
        );
        assert_eq!(
            point.blocked.len(),
            2,
            "seed {seed:#x}: both survivors hang on the dead process's lock: {:?}",
            point.blocked
        );
        assert_eq!(
            point.blocked_kinds,
            vec![BlockedKind::DeadHolder; 2],
            "seed {seed:#x}: the watchdog must classify the wedge as a dead holder"
        );
        assert_eq!(
            point.drained, None,
            "seed {seed:#x}: drain must not be attempted"
        );
    });
}

/// Mellor-Crummey's torn-tail window (between its tail `swap` and the
/// predecessor link store) is just as fatal: a death there strands the
/// link and the watchdog flags the survivors — the queue is "lock-free"
/// only in the informal sense, exactly as the paper classifies it.
#[test]
fn kill_in_mellor_crummey_torn_tail_window_blocks_survivors() {
    let point = run_simulated_faulted(
        Algorithm::MellorCrummey,
        SimConfig {
            processors: 3,
            watchdog_ns: 50_000_000,
            ..SimConfig::default()
        },
        &tiny(),
        FaultPlan::new().kill_at_label(0, "mc:enq:window", 0),
    );
    assert_eq!(point.killed, vec![0]);
    assert!(!point.survivors_completed());
    assert!(
        point
            .blocked_kinds
            .iter()
            .all(|k| *k == BlockedKind::DeadHolder),
        "the stranded link is a dead holder's, not live contention: {:?}",
        point.blocked_kinds
    );
    assert_eq!(point.drained, None);
}

/// The watchdog's other verdict: a straggler that outlives the deadline
/// with *nobody dead* is classified as live contention — the
/// non-repairable complement of [`BlockedKind::DeadHolder`]. Here a
/// 100 ms stall inside the MS enqueue window overshoots a 50 ms watchdog
/// while every peer stays alive.
#[test]
fn watchdog_classifies_an_overlong_stall_as_live_contention() {
    let point = run_simulated_faulted(
        Algorithm::NewNonBlocking,
        SimConfig {
            processors: 3,
            watchdog_ns: 50_000_000,
            ..SimConfig::default()
        },
        &tiny(),
        FaultPlan::new().stall_at_label(0, "msq:enq:window", 0, 100_000_000),
    );
    assert!(point.killed.is_empty(), "a stall is not a death");
    assert_eq!(point.blocked, vec![0], "the straggler itself is retired");
    assert_eq!(point.blocked_kinds, vec![BlockedKind::LiveContention]);
    // The other two processes finished their shares long before the
    // straggler's stall elapsed.
    assert_eq!(point.pairs_completed, 160);
}

/// Killing a process *between* reserving a [`MemBudget`] unit and
/// committing the allocation (the `seg:alloc:reserved` fault point) must
/// not leak the reservation: the guard releases it during the kill
/// unwind, survivors keep allocating, and after drain + drop the budget
/// is exactly where it started.
#[test]
fn kill_mid_allocation_conserves_budget_reservations_simulated() {
    let sim = Simulation::with_faults(
        SimConfig {
            processors: 3,
            watchdog_ns: 50_000_000,
            ..SimConfig::default()
        },
        FaultPlan::new().kill_at_label(0, "seg:alloc:reserved", 0),
    );
    let platform = sim.platform();
    let budget = Arc::new(MemBudget::new(&platform, 8));
    let queue = Algorithm::SegBatched.build_with_budget(&platform, 64, Some(Arc::clone(&budget)));
    // The residency floor: the dummy segment's unit, held for the queue's
    // whole lifetime.
    let floor = budget.reserved();
    assert_eq!(floor, 1, "one dummy segment resident after construction");
    let report = sim.run({
        let queue = Arc::clone(&queue);
        // Enqueue-only: all three processes push past segment boundaries,
        // so each calls into the arena's reserve-then-allocate slow path.
        move |info| {
            for i in 0..40_u64 {
                let value = ((info.pid as u64) << 8) | i;
                while queue.enqueue(value).is_err() {}
            }
        }
    });
    assert_eq!(
        report.killed,
        vec![0],
        "pid 0 should die at its first slow-path allocation"
    );
    assert!(report.blocked.is_empty(), "blocked: {:?}", report.blocked);
    assert_eq!(budget.overruns(), 0);
    // Reserved units now count exactly the live segments; draining walks
    // every unit except the dummy's back. A leaked mid-allocation
    // reservation would leave the count permanently above the floor.
    while queue.dequeue().is_some() {}
    assert_eq!(
        budget.reserved(),
        floor,
        "the killed process's uncommitted reservation leaked"
    );
}

/// Stalls in the *dequeue* critical window — the other half of the §11
/// taxonomy — likewise delay but never corrupt: every algorithm
/// completes the full workload and leaves an empty queue.
#[test]
fn stalls_in_the_dequeue_window_delay_but_never_corrupt() {
    for algorithm in Algorithm::ALL {
        let plan = FaultPlan::new()
            .stall_at_label(0, algorithm.dequeue_fault_label(), 0, 200_000)
            .stall_at_label(0, algorithm.dequeue_fault_label(), 4, 200_000);
        let point = run_simulated_faulted(
            algorithm,
            SimConfig {
                processors: 3,
                ..SimConfig::default()
            },
            &tiny(),
            plan,
        );
        assert_eq!(point.stalls_injected, 2, "{algorithm}: stalls fired");
        assert!(point.killed.is_empty(), "{algorithm}");
        assert!(point.survivors_completed(), "{algorithm}");
        assert_eq!(point.pairs_completed, 240, "{algorithm}");
        assert_eq!(point.drained, Some(0), "{algorithm}: queue empty after");
    }
}

/// A preemption storm parked on the MS dequeue window (Head swung, dummy
/// not yet freed) is absorbed without loss, exactly like its enqueue
/// twin.
#[test]
fn preempt_storm_on_the_ms_dequeue_window_is_absorbed() {
    let point = run_simulated_faulted(
        Algorithm::NewNonBlocking,
        SimConfig {
            processors: 2,
            processes_per_processor: 2,
            ..SimConfig::default()
        },
        &tiny(),
        FaultPlan::new().preempt_storm(0, "msq:deq:window", 16),
    );
    assert_eq!(point.preempts_injected, 16);
    assert!(point.killed.is_empty());
    assert!(point.survivors_completed());
    assert_eq!(point.pairs_completed, 240);
    assert_eq!(point.drained, Some(0));
}

/// Death in the dequeue window, across the paper's whole legend: only
/// the queues whose dequeue window is a held lock block their survivors.
/// Mellor-Crummey lands on the *survivable* side here — its dequeue
/// tears nothing — even though its enqueue window is blocking, the
/// asymmetry [`Algorithm::dequeue_death_survivable`] encodes.
#[test]
fn kill_in_the_dequeue_window_blocks_only_the_lock_based_queues() {
    for algorithm in Algorithm::ALL {
        let point = run_simulated_faulted(
            algorithm,
            SimConfig {
                processors: 3,
                watchdog_ns: 50_000_000,
                ..SimConfig::default()
            },
            &tiny(),
            FaultPlan::new().kill_at_label(0, algorithm.dequeue_fault_label(), 0),
        );
        assert_eq!(point.killed, vec![0], "{algorithm}");
        assert_eq!(
            point.survivors_completed(),
            algorithm.dequeue_death_survivable(),
            "{algorithm}: blocked {:?}",
            point.blocked
        );
        if algorithm.dequeue_death_survivable() {
            // Both survivors ran their full shares (the victim died
            // inside its first dequeue, so only its share is lost).
            assert_eq!(point.pairs_completed, 160, "{algorithm}");
            if algorithm.is_nonblocking() {
                // The victim's in-flight dequeue already swung Head, so
                // the queue ends balanced.
                assert_eq!(point.drained, Some(0), "{algorithm}");
            }
        } else {
            assert_eq!(point.drained, None, "{algorithm}");
        }
    }
}

/// Runs 3 simulated processes over the MS queue with pid 0 killed at its
/// first pass through the *dequeue* critical window (Head swung, dummy
/// not yet freed), records the surviving history, drains the queue, and
/// returns the history with the victim's in-flight dequeue admitted as a
/// pending operation. The kill fires *after* the Head CAS, so exactly
/// one recorded enqueue has no recorded dequeue: the value the victim
/// removed but never acknowledged.
fn kill_mid_dequeue_and_record(cfg: SimConfig) -> History {
    let seed = cfg.seed;
    let sim = Simulation::with_faults(cfg, FaultPlan::new().kill_at_label(0, "msq:deq:window", 0));
    let queue = Algorithm::NewNonBlocking.build(&sim.platform(), 64);
    let recorder = Recorder::new();
    let handles: Vec<_> = (0..3).map(|p| Some(recorder.handle(p))).collect();
    let handles = Arc::new(Mutex::new(handles));
    let report = sim.run({
        let queue = Arc::clone(&queue);
        let handles = Arc::clone(&handles);
        move |info| {
            let mut handle = handles.lock().unwrap()[info.pid].take().unwrap();
            for i in 0..2_u64 {
                let value = ((info.pid as u64) << 8) | i;
                handle.enqueue(&*queue, value).unwrap();
                handle.dequeue(&*queue);
            }
        }
    });
    assert_eq!(report.killed, vec![0], "seed {seed:#x}");
    assert!(
        report.blocked.is_empty(),
        "seed {seed:#x}: watchdog flagged survivors of a non-blocking queue: {:?}",
        report.blocked
    );
    let mut drainer = recorder.handle(3);
    while drainer.dequeue(&*queue).is_some() {}
    drop(drainer);

    let mut events = recorder.finish().events().to_vec();
    let enqueued: Vec<u64> = events
        .iter()
        .filter_map(|e| match e.operation {
            Operation::Enqueue(v) => Some(v),
            _ => None,
        })
        .collect();
    let dequeued: Vec<u64> = events
        .iter()
        .filter_map(|e| match e.operation {
            Operation::Dequeue(Some(v)) => Some(v),
            _ => None,
        })
        .collect();
    // Values are unique per (pid, iteration), so a set difference finds
    // the one the victim linearized out but never returned.
    let missing: Vec<u64> = enqueued
        .into_iter()
        .filter(|v| !dequeued.contains(v))
        .collect();
    assert_eq!(
        missing.len(),
        1,
        "seed {seed:#x}: exactly the victim's in-flight dequeue should be unrecorded: {missing:?}"
    );
    events.push(Event {
        process: 0,
        operation: Operation::Dequeue(Some(missing[0])),
        invoked_at: 0,
        returned_at: u64::MAX,
    });
    History::from_events(events)
}

/// **Acceptance, dequeue side**: kill a process mid-dequeue on the MS
/// queue across 16 perturbed schedules. Survivors always finish, the
/// queue always drains, and every recorded history — the victim's
/// pending dequeue included — passes the fast checks and the exhaustive
/// Wing–Gong linearizability search.
#[test]
fn kill_mid_dequeue_on_ms_queue_survivors_linearize_across_16_seeds() {
    let base = SimConfig {
        processors: 3,
        quantum_ns: 60_000,
        watchdog_ns: 50_000_000,
        ..SimConfig::default()
    };
    schedule_sweep(base, 16, |cfg| {
        let seed = cfg.seed;
        let history = kill_mid_dequeue_and_record(cfg);
        assert!(
            history.check_queue_safety().is_empty(),
            "seed {seed:#x}: fast checks failed: {:?}",
            history.events()
        );
        assert!(
            is_linearizable_queue(history.events()),
            "seed {seed:#x}: faulted history not linearizable: {:?}",
            history.events()
        );
    });
}

/// The same death inside the single-lock queue's *dequeue* critical
/// section (`H_lock` held): across 16 perturbed schedules the watchdog
/// must report every survivor permanently blocked.
#[test]
fn kill_mid_dequeue_on_single_lock_watchdog_flags_survivors_across_16_seeds() {
    let base = SimConfig {
        processors: 3,
        quantum_ns: 60_000,
        watchdog_ns: 50_000_000,
        ..SimConfig::default()
    };
    schedule_sweep(base, 16, |cfg| {
        let seed = cfg.seed;
        let point = run_simulated_faulted(
            Algorithm::SingleLock,
            cfg,
            &tiny(),
            FaultPlan::new().kill_at_label(0, "single-lock:deq:locked", 0),
        );
        assert_eq!(point.killed, vec![0], "seed {seed:#x}");
        assert!(
            !point.survivors_completed(),
            "seed {seed:#x}: a single-lock dequeue death should block survivors"
        );
        assert_eq!(
            point.blocked.len(),
            2,
            "seed {seed:#x}: both survivors hang on the dead process's lock: {:?}",
            point.blocked
        );
        assert_eq!(
            point.blocked_kinds,
            vec![BlockedKind::DeadHolder; 2],
            "seed {seed:#x}: the watchdog must classify the wedge as a dead holder"
        );
        assert_eq!(
            point.drained, None,
            "seed {seed:#x}: drain must not be attempted"
        );
    });
}

/// The two-lock queue's `H_lock` is just as fatal held-at-death: the
/// paper's Figure 2 algorithm lets enqueuers sail past (T_lock is
/// independent) but every survivor eventually needs a dequeue, wedges on
/// the dead holder, and is watchdog-flagged — across 16 schedules.
#[test]
fn kill_mid_dequeue_on_two_lock_watchdog_flags_survivors_across_16_seeds() {
    let base = SimConfig {
        processors: 3,
        quantum_ns: 60_000,
        watchdog_ns: 50_000_000,
        ..SimConfig::default()
    };
    schedule_sweep(base, 16, |cfg| {
        let seed = cfg.seed;
        let point = run_simulated_faulted(
            Algorithm::NewTwoLock,
            cfg,
            &tiny(),
            FaultPlan::new().kill_at_label(0, "two-lock:deq:locked", 0),
        );
        assert_eq!(point.killed, vec![0], "seed {seed:#x}");
        assert!(
            !point.survivors_completed(),
            "seed {seed:#x}: a dead H_lock holder should block survivors"
        );
        assert_eq!(
            point.blocked.len(),
            2,
            "seed {seed:#x}: both survivors wedge on their next dequeue: {:?}",
            point.blocked
        );
        assert_eq!(
            point.blocked_kinds,
            vec![BlockedKind::DeadHolder; 2],
            "seed {seed:#x}: the watchdog must classify the wedge as a dead holder"
        );
        assert_eq!(point.drained, None, "seed {seed:#x}");
    });
}

/// Restart-and-catch-up on the MS queue: the designated survivor sees
/// the death notice, replays the victim's whole residual share, and the
/// handoff is stamped with a positive time-to-recover — deterministically
/// across 16 perturbed schedules.
#[test]
fn dequeue_kill_recovery_absorbs_residual_share_across_16_seeds() {
    let base = SimConfig {
        processors: 3,
        quantum_ns: 60_000,
        watchdog_ns: 400_000_000,
        ..SimConfig::default()
    };
    schedule_sweep(base, 16, |cfg| {
        let seed = cfg.seed;
        let point = run_simulated_recovered(
            Algorithm::NewNonBlocking,
            cfg,
            &tiny(),
            FaultPlan::new().kill_at_label(1, "msq:deq:window", 0),
            RecoveryPolicy::designated(0),
        );
        assert_eq!(point.killed, vec![1], "seed {seed:#x}");
        assert!(
            point.survivors_completed(),
            "seed {seed:#x}: blocked {:?}",
            point.blocked
        );
        // The victim died inside its first dequeue: its whole 80-pair
        // share is residual and must be replayed.
        assert_eq!(point.recovered_pairs, 80, "seed {seed:#x}");
        assert_eq!(
            point.pairs_completed + point.recovered_pairs,
            240,
            "seed {seed:#x}"
        );
        assert_eq!(point.recoveries.len(), 1, "seed {seed:#x}");
        let ttr = point.time_to_recover_ns.expect("recovery completed");
        assert!(ttr > 0, "seed {seed:#x}: catch-up costs virtual time");
        assert_eq!(point.drained, Some(0), "seed {seed:#x}");
    });
}

/// Every (queue, held lock) pair in the blocking legend, with the
/// expected repair verdict and the number of values the repaired death
/// strands. Killing at occurrence 0 of each label dies holding:
/// the single lock (enqueue side, then dequeue side), the two-lock
/// queue's `T_lock` and `H_lock`, and Mellor-Crummey's torn-tail and
/// stranded-dummy windows.
const REPAIR_COMBOS: [(Algorithm, &str, &str, u64); 6] = [
    (
        Algorithm::SingleLock,
        "single-lock:enq:locked",
        "single-lock:repair:enq-discard",
        0,
    ),
    (
        Algorithm::SingleLock,
        "single-lock:deq:locked",
        "single-lock:repair:deq-rollback",
        1,
    ),
    (
        Algorithm::NewTwoLock,
        "two-lock:enq:locked",
        "two-lock:repair:enq-discard",
        0,
    ),
    (
        Algorithm::NewTwoLock,
        "two-lock:deq:locked",
        "two-lock:repair:deq-rollback",
        1,
    ),
    (
        Algorithm::MellorCrummey,
        "mc:enq:window",
        "mc:repair:enq-complete",
        1,
    ),
    (
        Algorithm::MellorCrummey,
        "mc:deq:window",
        "mc:repair:deq-complete",
        0,
    ),
];

/// **Tentpole acceptance**: kill a process while it holds each lock (or
/// sits in each blocking window) of every repairable queue, across 16
/// perturbed schedules. The watchdog never fires: a waiter revokes the
/// dead holder's lock, repairs the torn invariant with the expected
/// verdict, stamps a positive time-to-repair, and the designated
/// survivor replays the victim's residual share to full conservation.
#[test]
fn kill_while_holding_each_lock_is_repaired_across_16_seeds() {
    let base = SimConfig {
        processors: 3,
        quantum_ns: 60_000,
        watchdog_ns: 400_000_000,
        ..SimConfig::default()
    };
    schedule_sweep(base, 16, |cfg| {
        let seed = cfg.seed;
        for (algorithm, kill_label, repair_label, stranded) in REPAIR_COMBOS {
            let point = run_simulated_repaired(
                algorithm,
                cfg,
                &tiny(),
                FaultPlan::new().kill_at_label(1, kill_label, 0),
                RecoveryPolicy::designated(0),
            );
            assert_eq!(point.killed, vec![1], "{algorithm} seed {seed:#x}");
            assert!(
                point.survivors_completed(),
                "{algorithm} seed {seed:#x}: repair must beat the watchdog, blocked {:?}",
                point.blocked
            );
            assert!(point.blocked_kinds.is_empty(), "{algorithm} seed {seed:#x}");
            // The victim died inside its first pair: its whole 80-pair
            // share is residual and must be replayed.
            assert_eq!(point.recovered_pairs, 80, "{algorithm} seed {seed:#x}");
            assert_eq!(
                point.pairs_completed + point.recovered_pairs,
                240,
                "{algorithm} seed {seed:#x}: conservation"
            );
            assert_eq!(point.repairs.len(), 1, "{algorithm} seed {seed:#x}");
            assert_eq!(point.repairs[0].victim, 1, "{algorithm} seed {seed:#x}");
            assert_eq!(
                point.repairs[0].point, repair_label,
                "{algorithm} seed {seed:#x}: wrong repair verdict"
            );
            let ttr = point
                .time_to_repair_ns
                .expect("a repaired run stamps time-to-repair");
            assert!(
                ttr > 0,
                "{algorithm} seed {seed:#x}: dispossession costs virtual time"
            );
            assert_eq!(
                point.drained,
                Some(stranded),
                "{algorithm} seed {seed:#x}: the repair verdict fixes the stranded count"
            );
        }
    });
}

/// Runs 3 simulated processes over `algorithm`'s *repairable* build with
/// pid 0 killed at its first pass through `label`, records the surviving
/// history, drains the queue (possible precisely because repair healed
/// it), and admits the victim's in-flight operation per the repair
/// verdict: a repair-completed enqueue whose value surfaced becomes a
/// pending enqueue, a repair-completed dequeue's vanished value becomes
/// a pending dequeue, and a discarded or rolled-back operation never
/// happened at all.
fn kill_and_record_repaired(cfg: SimConfig, algorithm: Algorithm, label: &'static str) -> History {
    let seed = cfg.seed;
    let sim = Simulation::with_faults(cfg, FaultPlan::new().kill_at_label(0, label, 0));
    let queue = algorithm.build_repairable(&sim.platform(), 64);
    let recorder = Recorder::new();
    let handles: Vec<_> = (0..3).map(|p| Some(recorder.handle(p))).collect();
    let handles = Arc::new(Mutex::new(handles));
    let report = sim.run({
        let queue = Arc::clone(&queue);
        let handles = Arc::clone(&handles);
        move |info| {
            let mut handle = handles.lock().unwrap()[info.pid].take().unwrap();
            for i in 0..2_u64 {
                let value = ((info.pid as u64) << 8) | i;
                handle.enqueue(&*queue, value).unwrap();
                handle.dequeue(&*queue);
            }
        }
    });
    assert_eq!(report.killed, vec![0], "{algorithm} seed {seed:#x}");
    assert!(
        report.blocked.is_empty(),
        "{algorithm} seed {seed:#x}: repair must beat the watchdog: {:?}",
        report.blocked
    );
    assert!(report.repairs.len() <= 1, "{algorithm} seed {seed:#x}");
    let mut drainer = recorder.handle(3);
    while drainer.dequeue(&*queue).is_some() {}
    drop(drainer);

    let mut events = recorder.finish().events().to_vec();
    // Enqueue side: the victim's repair-completed enqueue surfaced a
    // value nobody recorded enqueuing.
    let victim_surfaced = events
        .iter()
        .any(|e| e.operation == Operation::Dequeue(Some(VICTIM_VALUE)));
    let victim_recorded = events
        .iter()
        .any(|e| e.operation == Operation::Enqueue(VICTIM_VALUE));
    if victim_surfaced && !victim_recorded {
        events.push(Event {
            process: 0,
            operation: Operation::Enqueue(VICTIM_VALUE),
            invoked_at: 0,
            returned_at: u64::MAX,
        });
    }
    // Dequeue side: a recorded enqueue whose value never surfaced was
    // linearized out by the victim's repair-completed dequeue.
    let enqueued: Vec<u64> = events
        .iter()
        .filter_map(|e| match e.operation {
            Operation::Enqueue(v) => Some(v),
            _ => None,
        })
        .collect();
    let dequeued: Vec<u64> = events
        .iter()
        .filter_map(|e| match e.operation {
            Operation::Dequeue(Some(v)) => Some(v),
            _ => None,
        })
        .collect();
    let missing: Vec<u64> = enqueued
        .into_iter()
        .filter(|v| !dequeued.contains(v))
        .collect();
    assert!(
        missing.len() <= 1,
        "{algorithm} seed {seed:#x}: at most the victim's in-flight dequeue vanishes: {missing:?}"
    );
    for v in missing {
        events.push(Event {
            process: 0,
            operation: Operation::Dequeue(Some(v)),
            invoked_at: 0,
            returned_at: u64::MAX,
        });
    }
    History::from_events(events)
}

/// **Tentpole acceptance, history side**: every repaired history — with
/// the victim's in-flight operation admitted per the repair verdict —
/// passes the fast checks and the exhaustive Wing–Gong linearizability
/// search, across 16 perturbed schedules for all six (queue, lock)
/// combinations. Repair never invents, loses, reorders, or duplicates a
/// value.
#[test]
fn repaired_histories_linearize_across_16_seeds() {
    let base = SimConfig {
        processors: 3,
        quantum_ns: 60_000,
        watchdog_ns: 400_000_000,
        ..SimConfig::default()
    };
    schedule_sweep(base, 16, |cfg| {
        for (algorithm, kill_label, _, _) in REPAIR_COMBOS {
            let seed = cfg.seed;
            let history = kill_and_record_repaired(cfg, algorithm, kill_label);
            assert!(
                history.check_queue_safety().is_empty(),
                "{algorithm} seed {seed:#x}: fast checks failed: {:?}",
                history.events()
            );
            assert!(
                is_linearizable_queue(history.events()),
                "{algorithm} seed {seed:#x}: repaired history not linearizable: {:?}",
                history.events()
            );
        }
    });
}

/// The "unless the lock-holder's death is survivable" nuance:
/// Mellor-Crummey is blocking on the enqueue side (its torn-tail window
/// wedges survivors), but a dequeue-window death tears nothing — the
/// designated survivor absorbs the victim's share like a non-blocking
/// queue's would.
#[test]
fn mellor_crummey_dequeue_death_is_survivable_and_recoverable() {
    let point = run_simulated_recovered(
        Algorithm::MellorCrummey,
        SimConfig {
            processors: 3,
            watchdog_ns: 400_000_000,
            ..SimConfig::default()
        },
        &tiny(),
        FaultPlan::new().kill_at_label(1, "mc:deq:window", 0),
        RecoveryPolicy::designated(0),
    );
    assert_eq!(point.killed, vec![1]);
    assert!(point.survivors_completed(), "blocked: {:?}", point.blocked);
    assert_eq!(point.recovered_pairs, 80);
    assert_eq!(point.recoveries.len(), 1);
    assert!(point.time_to_recover_ns.expect("recovered") > 0);
}

/// The native analogue: a thread that panics while holding an
/// uncommitted [`ms_queues::Reservation`] releases it during unwinding.
#[test]
fn panicking_thread_releases_uncommitted_reservation_natively() {
    let platform = NativePlatform::new();
    let budget = Arc::new(MemBudget::new(&platform, 4));
    let worker = {
        let budget = Arc::clone(&budget);
        std::thread::spawn(move || {
            let _guard = budget.try_reserve_guard(2).expect("well under limit");
            assert_eq!(budget.reserved(), 2);
            // The guard is still held (uncommitted) when the thread dies.
            panic!("process dies mid-allocation");
        })
    };
    assert!(worker.join().is_err(), "the worker must have panicked");
    assert_eq!(budget.reserved(), 0, "unwinding released the reservation");
    assert_eq!(budget.overruns(), 0);
}

/// Builds the deterministic *re-revocation chain* on the repairable
/// single-lock queue and returns the surviving history. Staggered
/// arrivals make the chain identical on every perturbed schedule:
///
/// 1. pid 1 starts immediately, takes the lock, and is killed holding
///    it (`single-lock:enq:locked`, intent published, node unlinked);
/// 2. pids 2 and 3 arrive 500 µs later, so each one's first
///    acquisition finds a dead owner past the probe budget and
///    *revokes* — the CAS winner inherits the repair duty and is
///    killed inside `single-lock:repair:window`, leaving
///    `repairing(dead)`, which the loser then re-revokes by the very
///    same rule and dies the same way;
/// 3. pid 0 arrives at 5 ms, re-revokes the second dead *repairer*
///    (not the original lock holder — that is the chain's proof),
///    completes pid 1's repair, and runs its pairs to completion.
fn rerevocation_chain_and_record(cfg: SimConfig) -> History {
    let seed = cfg.seed;
    let plan = FaultPlan::new()
        .kill_at_label(1, "single-lock:enq:locked", 0)
        .kill_at_label(2, "single-lock:repair:window", 0)
        .kill_at_label(3, "single-lock:repair:window", 0);
    let sim = Simulation::with_faults(cfg, plan);
    let platform = sim.platform();
    let queue = Algorithm::SingleLock.build_repairable(&platform, 64);
    let recorder = Recorder::new();
    let handles: Vec<_> = (0..4).map(|p| Some(recorder.handle(p))).collect();
    let handles = Arc::new(Mutex::new(handles));
    let report = sim.run({
        let queue = Arc::clone(&queue);
        let handles = Arc::clone(&handles);
        move |info| {
            let mut handle = handles.lock().unwrap()[info.pid].take().unwrap();
            match info.pid {
                2 | 3 => platform.delay(500_000),
                0 => platform.delay(5_000_000),
                _ => {}
            }
            let pairs = if info.pid == 0 { 4 } else { 2 };
            for i in 0..pairs {
                let value = ((info.pid as u64) << 8) | i;
                handle.enqueue(&*queue, value).unwrap();
                handle.dequeue(&*queue);
            }
        }
    });
    let mut killed = report.killed.clone();
    killed.sort_unstable();
    assert_eq!(killed, vec![1, 2, 3], "seed {seed:#x}");
    assert!(
        report.blocked.is_empty(),
        "seed {seed:#x}: the chain must beat the watchdog: {:?}",
        report.blocked
    );
    // Exactly one repair completes — by pid 0, and its reported victim
    // is a dead *repairer*, proving the `repairing(dead)` word was
    // itself revoked rather than the original holder's `held(dead)`.
    assert_eq!(report.repairs.len(), 1, "seed {seed:#x}");
    assert_eq!(report.repairs[0].by, 0, "seed {seed:#x}");
    assert!(
        report.repairs[0].victim == 2 || report.repairs[0].victim == 3,
        "seed {seed:#x}: pid 0 must dispossess a dead repairer, got victim {}",
        report.repairs[0].victim
    );
    // pid 1 died with its node unlinked, so the torn enqueue is
    // discarded — same verdict as the single-victim sweep.
    assert_eq!(
        report.repairs[0].point, "single-lock:repair:enq-discard",
        "seed {seed:#x}"
    );
    let ttr = report
        .time_to_repair_ns()
        .expect("the chain stamps time-to-repair");
    assert!(
        ttr > 0,
        "seed {seed:#x}: two re-revocations cost virtual time"
    );

    // The queue is fully operable afterwards: the drain succeeds and
    // comes back empty (pid 1's value was discarded, pids 2 and 3 died
    // before publishing anything, pid 0's pairs balanced).
    let mut drainer = recorder.handle(4);
    let mut stranded = 0_u64;
    while drainer.dequeue(&*queue).is_some() {
        stranded += 1;
    }
    drop(drainer);
    assert_eq!(
        stranded, 0,
        "seed {seed:#x}: the discard verdict strands nothing"
    );

    let mut events = recorder.finish().events().to_vec();
    // Defensive admission, mirroring `kill_and_record_repaired`: any
    // surfaced-but-unrecorded value is a victim's linearized-but-
    // unacknowledged enqueue (none is expected under the discard
    // verdict, but the checker must not depend on that).
    let recorded: Vec<u64> = events
        .iter()
        .filter_map(|e| match e.operation {
            Operation::Enqueue(v) => Some(v),
            _ => None,
        })
        .collect();
    let surfaced: Vec<u64> = events
        .iter()
        .filter_map(|e| match e.operation {
            Operation::Dequeue(Some(v)) => Some(v),
            _ => None,
        })
        .collect();
    for v in surfaced {
        if !recorded.contains(&v) {
            events.push(Event {
                process: (v >> 8) as usize,
                operation: Operation::Enqueue(v),
                invoked_at: 0,
                returned_at: u64::MAX,
            });
        }
    }
    History::from_events(events)
}

/// **Multi-victim fault plans, part 1**: a repairer killed mid-repair
/// leaves `repairing(dead)`, which is revocable by the same dead-holder
/// rule — twice over. Across 16 perturbed schedules the three-death
/// chain (holder, repairer, re-repairer) always ends with the last
/// arrival completing the original victim's repair, and the surviving
/// history passes the fast checks and the exhaustive Wing–Gong search.
#[test]
fn repairer_killed_mid_repair_is_rerevoked_across_16_seeds() {
    let base = SimConfig {
        processors: 4,
        quantum_ns: 60_000,
        watchdog_ns: 400_000_000,
        ..SimConfig::default()
    };
    schedule_sweep(base, 16, |cfg| {
        let seed = cfg.seed;
        let history = rerevocation_chain_and_record(cfg);
        assert!(
            history.check_queue_safety().is_empty(),
            "seed {seed:#x}: fast checks failed: {:?}",
            history.events()
        );
        assert!(
            is_linearizable_queue(history.events()),
            "seed {seed:#x}: chain history not linearizable: {:?}",
            history.events()
        );
    });
}

/// Runs the designated-survivor protocol with recorder handles and a
/// fault point before every replayed pair, killing pid 1 at its first
/// MS enqueue window and then pid 0 — the survivor — at the *second*
/// replay fault point, i.e. mid-replay: after exactly one replayed
/// pair, before the handoff is stamped. Returns the surviving history.
fn survivor_killed_mid_replay_and_record(cfg: SimConfig) -> History {
    const PAIRS_EACH: u64 = 2;
    const REPLAY_BASE: u64 = 1 << 12;
    let seed = cfg.seed;
    let plan = FaultPlan::new()
        .kill_at_label(1, "msq:enq:window", 0)
        .kill_at_label(0, "test:replay:pair", 1);
    let sim = Simulation::with_faults(cfg, plan);
    let platform = sim.platform();
    let queue = Algorithm::NewNonBlocking.build(&platform, 64);
    let n = sim.num_processes();
    // Progress cells and the death board are allocated during untimed
    // setup so cell ids stay schedule-stable, exactly like the policy
    // driver's own setup.
    let progress: Arc<Vec<_>> = Arc::new((0..n).map(|_| platform.alloc_cell(0)).collect());
    let _ = platform.death_board();
    let recorder = Recorder::new();
    let handles: Vec<_> = (0..n).map(|p| Some(recorder.handle(p))).collect();
    let handles = Arc::new(Mutex::new(handles));
    let report = sim.run({
        let queue = Arc::clone(&queue);
        let progress = Arc::clone(&progress);
        let handles = Arc::clone(&handles);
        move |info| {
            let mut handle = handles.lock().unwrap()[info.pid].take().unwrap();
            let mut absorbed = vec![false; n];
            let absorb_new_deaths = |handle: &mut ms_queues::linearize::RecorderHandle,
                                     absorbed: &mut [bool]| {
                let notices = platform.dead_peers();
                for victim in 0..n {
                    if victim == info.pid || absorbed[victim] || notices & (1 << victim) == 0 {
                        continue;
                    }
                    absorbed[victim] = true;
                    for i in progress[victim].load()..PAIRS_EACH {
                        // The watched window: pid 0 dies at occurrence
                        // 1, after replaying exactly one pair.
                        platform.fault_point("test:replay:pair");
                        handle.enqueue(&*queue, REPLAY_BASE | i).unwrap();
                        handle.dequeue(&*queue);
                    }
                    platform.mark_recovered(victim);
                }
            };
            for i in 0..PAIRS_EACH {
                let value = ((info.pid as u64) << 8) | i;
                handle.enqueue(&*queue, value).unwrap();
                handle.dequeue(&*queue);
                progress[info.pid].store(i + 1);
                if info.pid == 0 {
                    absorb_new_deaths(&mut handle, &mut absorbed);
                }
            }
            if info.pid == 0 {
                loop {
                    absorb_new_deaths(&mut handle, &mut absorbed);
                    let all_settled = (0..n)
                        .all(|v| v == info.pid || absorbed[v] || progress[v].load() == PAIRS_EACH);
                    if all_settled {
                        break;
                    }
                    platform.delay(500);
                }
            }
        }
    });
    let mut killed = report.killed.clone();
    killed.sort_unstable();
    assert_eq!(killed, vec![0, 1], "seed {seed:#x}");
    assert!(
        report.blocked.is_empty(),
        "seed {seed:#x}: deaths on a non-blocking queue wedge nobody: {:?}",
        report.blocked
    );
    // The survivor died between replayed pairs, before stamping the
    // handoff: the run records *no* completed recovery.
    assert!(
        report.recoveries.is_empty(),
        "seed {seed:#x}: a mid-replay death must not stamp the handoff"
    );
    assert_eq!(report.time_to_recover_ns(), None, "seed {seed:#x}");

    // The queue remains fully operable: drain whatever the deaths left.
    let mut drainer = recorder.handle(n);
    while drainer.dequeue(&*queue).is_some() {}
    drop(drainer);

    let mut events = recorder.finish().events().to_vec();
    // Exactly one replayed pair completed before the survivor died —
    // that is what "mid-replay" means, and the history must show it.
    assert!(
        events
            .iter()
            .any(|e| e.operation == Operation::Enqueue(REPLAY_BASE)),
        "seed {seed:#x}: the first replayed pair must be on record"
    );
    assert!(
        !events
            .iter()
            .any(|e| e.operation == Operation::Enqueue(REPLAY_BASE | 1)),
        "seed {seed:#x}: the survivor died before the second replayed pair"
    );
    // Admit pid 1's linearized-but-unacknowledged enqueue if its value
    // surfaced (it died inside the MS enqueue window, so the link CAS
    // may or may not have landed, seed by seed).
    let recorded: Vec<u64> = events
        .iter()
        .filter_map(|e| match e.operation {
            Operation::Enqueue(v) => Some(v),
            _ => None,
        })
        .collect();
    let surfaced: Vec<u64> = events
        .iter()
        .filter_map(|e| match e.operation {
            Operation::Dequeue(Some(v)) => Some(v),
            _ => None,
        })
        .collect();
    for v in surfaced {
        if !recorded.contains(&v) {
            events.push(Event {
                process: (v >> 8) as usize,
                operation: Operation::Enqueue(v),
                invoked_at: 0,
                returned_at: u64::MAX,
            });
        }
    }
    History::from_events(events)
}

/// **Multi-victim fault plans, part 2**: the designated survivor itself
/// is killed mid-replay — after absorbing the victim's death notice and
/// replaying one residual pair, before the handoff stamp. Across 16
/// perturbed schedules no recovery is recorded, the remaining process
/// finishes untouched, the queue drains, and the history — replayed
/// pair included — stays linearizable.
#[test]
fn survivor_killed_mid_replay_linearizes_across_16_seeds() {
    let base = SimConfig {
        processors: 3,
        quantum_ns: 60_000,
        watchdog_ns: 50_000_000,
        ..SimConfig::default()
    };
    schedule_sweep(base, 16, |cfg| {
        let seed = cfg.seed;
        let history = survivor_killed_mid_replay_and_record(cfg);
        assert!(
            history.check_queue_safety().is_empty(),
            "seed {seed:#x}: fast checks failed: {:?}",
            history.events()
        );
        assert!(
            is_linearizable_queue(history.events()),
            "seed {seed:#x}: mid-replay history not linearizable: {:?}",
            history.events()
        );
    });
}
