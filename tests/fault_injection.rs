//! The paper's progress claims under deterministic adversity (DESIGN.md
//! §11): a [`FaultPlan`] stalls, preempts, or permanently kills chosen
//! processes at labelled *fault points* inside each algorithm's critical
//! windows, and the virtual-time watchdog turns "non-blocking" from prose
//! into an oracle. The headline pair, swept across ≥ 16 perturbed
//! schedules each:
//!
//! * killing a process inside the MS queue's enqueue window leaves every
//!   survivor able to finish, the queue drainable, and the recorded
//!   history linearizable (the victim's linearized-but-unacknowledged
//!   enqueue is admitted as a pending operation, Section 3.2 style);
//! * the *same* death inside the single-lock queue's critical section is
//!   detected by the watchdog as permanently blocking every survivor —
//!   the expected outcome for a blocking algorithm, asserted rather than
//!   hung.

use std::sync::{Arc, Mutex};

use ms_queues::linearize::{Event, Operation};
use ms_queues::{
    is_linearizable_queue, run_simulated_faulted, schedule_sweep, Algorithm, FaultPlan, History,
    MemBudget, NativePlatform, Recorder, SimConfig, Simulation, WorkloadConfig,
};

fn tiny() -> WorkloadConfig {
    WorkloadConfig {
        pairs_total: 240,
        other_work_ns: 500,
        capacity: 256,
        mem_budget: None,
    }
}

/// Stalls in the enqueue critical window delay but never corrupt: every
/// algorithm (blocking ones included — the victim *resumes*) completes
/// the full workload and leaves an empty queue.
#[test]
fn stalls_in_the_critical_window_delay_but_never_corrupt() {
    for algorithm in Algorithm::ALL {
        let plan = FaultPlan::new()
            .stall_at_label(0, algorithm.enqueue_fault_label(), 0, 200_000)
            .stall_at_label(0, algorithm.enqueue_fault_label(), 4, 200_000);
        let point = run_simulated_faulted(
            algorithm,
            SimConfig {
                processors: 3,
                ..SimConfig::default()
            },
            &tiny(),
            plan,
        );
        assert_eq!(point.stalls_injected, 2, "{algorithm}: stalls fired");
        assert!(point.killed.is_empty(), "{algorithm}");
        assert!(point.survivors_completed(), "{algorithm}");
        assert_eq!(point.pairs_completed, 240, "{algorithm}");
        assert_eq!(point.drained, Some(0), "{algorithm}: queue empty after");
    }
}

/// A preemption storm parked on the MS enqueue window — the
/// multiprogrammed scheduler landing on the worst instruction over and
/// over (the paper's Figures 4–5 regime) — is absorbed without loss.
#[test]
fn preempt_storm_on_the_ms_window_is_absorbed() {
    let point = run_simulated_faulted(
        Algorithm::NewNonBlocking,
        SimConfig {
            processors: 2,
            processes_per_processor: 2,
            ..SimConfig::default()
        },
        &tiny(),
        FaultPlan::new().preempt_storm(0, "msq:enq:window", 16),
    );
    assert_eq!(point.preempts_injected, 16);
    assert!(point.killed.is_empty());
    assert!(point.survivors_completed());
    assert_eq!(point.pairs_completed, 240);
    assert_eq!(point.drained, Some(0));
}

/// The victim's first enqueue value in [`kill_and_record`] workloads:
/// pid 0, iteration 0.
const VICTIM_VALUE: u64 = 0;

/// Runs 3 simulated processes over the MS queue with pid 0 killed at its
/// first pass through the enqueue critical window (node linked, Tail
/// lagging), records the surviving history, drains the queue, and
/// returns the history with the victim's linearized-but-unacknowledged
/// enqueue admitted as a pending operation (interval `[0, u64::MAX]`,
/// concurrent with everything) if its value ever surfaced.
fn kill_and_record(cfg: SimConfig) -> History {
    let seed = cfg.seed;
    let sim = Simulation::with_faults(cfg, FaultPlan::new().kill_at_label(0, "msq:enq:window", 0));
    let queue = Algorithm::NewNonBlocking.build(&sim.platform(), 64);
    let recorder = Recorder::new();
    let handles: Vec<_> = (0..3).map(|p| Some(recorder.handle(p))).collect();
    let handles = Arc::new(Mutex::new(handles));
    let report = sim.run({
        let queue = Arc::clone(&queue);
        let handles = Arc::clone(&handles);
        move |info| {
            let mut handle = handles.lock().unwrap()[info.pid].take().unwrap();
            for i in 0..2_u64 {
                let value = ((info.pid as u64) << 8) | i;
                handle.enqueue(&*queue, value).unwrap();
                handle.dequeue(&*queue);
            }
        }
    });
    assert_eq!(report.killed, vec![0], "seed {seed:#x}");
    assert!(
        report.blocked.is_empty(),
        "seed {seed:#x}: watchdog flagged survivors of a non-blocking queue: {:?}",
        report.blocked
    );
    // The dead process must not block the drain either: the queue is
    // fully operable from the outside afterwards.
    let mut drainer = recorder.handle(3);
    while drainer.dequeue(&*queue).is_some() {}
    drop(drainer);

    let mut events = recorder.finish().events().to_vec();
    let victim_surfaced = events
        .iter()
        .any(|e| e.operation == Operation::Dequeue(Some(VICTIM_VALUE)));
    let victim_recorded = events
        .iter()
        .any(|e| e.operation == Operation::Enqueue(VICTIM_VALUE));
    if victim_surfaced && !victim_recorded {
        events.push(Event {
            process: 0,
            operation: Operation::Enqueue(VICTIM_VALUE),
            invoked_at: 0,
            returned_at: u64::MAX,
        });
    }
    History::from_events(events)
}

/// **Acceptance, part 1**: kill a process mid-enqueue on the MS queue
/// across 16 perturbed schedules. Survivors always finish, the queue
/// always drains, and every recorded history — victim's pending enqueue
/// included — passes the fast checks and the exhaustive Wing–Gong
/// linearizability search.
#[test]
fn kill_mid_enqueue_on_ms_queue_survivors_linearize_across_16_seeds() {
    let base = SimConfig {
        processors: 3,
        quantum_ns: 60_000,
        watchdog_ns: 50_000_000,
        ..SimConfig::default()
    };
    schedule_sweep(base, 16, |cfg| {
        let seed = cfg.seed;
        let history = kill_and_record(cfg);
        assert!(
            history.check_queue_safety().is_empty(),
            "seed {seed:#x}: fast checks failed: {:?}",
            history.events()
        );
        assert!(
            is_linearizable_queue(history.events()),
            "seed {seed:#x}: faulted history not linearizable: {:?}",
            history.events()
        );
    });
}

/// **Acceptance, part 2**: the *same* fault — death at the first enqueue
/// critical window — on the single-lock queue. Across 16 perturbed
/// schedules the victim dies holding the lock, and the virtual-time
/// watchdog must report every survivor permanently blocked (and the
/// post-mortem queue unapproachable: no drain is attempted).
#[test]
fn kill_mid_enqueue_on_single_lock_watchdog_flags_survivors_across_16_seeds() {
    let base = SimConfig {
        processors: 3,
        quantum_ns: 60_000,
        watchdog_ns: 50_000_000,
        ..SimConfig::default()
    };
    schedule_sweep(base, 16, |cfg| {
        let seed = cfg.seed;
        let point = run_simulated_faulted(
            Algorithm::SingleLock,
            cfg,
            &tiny(),
            FaultPlan::new().kill_at_label(0, "single-lock:enq:locked", 0),
        );
        assert_eq!(point.killed, vec![0], "seed {seed:#x}");
        assert!(
            !point.survivors_completed(),
            "seed {seed:#x}: a single-lock death should block survivors"
        );
        assert_eq!(
            point.blocked.len(),
            2,
            "seed {seed:#x}: both survivors hang on the dead process's lock: {:?}",
            point.blocked
        );
        assert_eq!(
            point.drained, None,
            "seed {seed:#x}: drain must not be attempted"
        );
    });
}

/// Mellor-Crummey's torn-tail window (between its tail `swap` and the
/// predecessor link store) is just as fatal: a death there strands the
/// link and the watchdog flags the survivors — the queue is "lock-free"
/// only in the informal sense, exactly as the paper classifies it.
#[test]
fn kill_in_mellor_crummey_torn_tail_window_blocks_survivors() {
    let point = run_simulated_faulted(
        Algorithm::MellorCrummey,
        SimConfig {
            processors: 3,
            watchdog_ns: 50_000_000,
            ..SimConfig::default()
        },
        &tiny(),
        FaultPlan::new().kill_at_label(0, "mc:enq:window", 0),
    );
    assert_eq!(point.killed, vec![0]);
    assert!(!point.survivors_completed());
    assert_eq!(point.drained, None);
}

/// Killing a process *between* reserving a [`MemBudget`] unit and
/// committing the allocation (the `seg:alloc:reserved` fault point) must
/// not leak the reservation: the guard releases it during the kill
/// unwind, survivors keep allocating, and after drain + drop the budget
/// is exactly where it started.
#[test]
fn kill_mid_allocation_conserves_budget_reservations_simulated() {
    let sim = Simulation::with_faults(
        SimConfig {
            processors: 3,
            watchdog_ns: 50_000_000,
            ..SimConfig::default()
        },
        FaultPlan::new().kill_at_label(0, "seg:alloc:reserved", 0),
    );
    let platform = sim.platform();
    let budget = Arc::new(MemBudget::new(&platform, 8));
    let queue = Algorithm::SegBatched.build_with_budget(&platform, 64, Some(Arc::clone(&budget)));
    // The residency floor: the dummy segment's unit, held for the queue's
    // whole lifetime.
    let floor = budget.reserved();
    assert_eq!(floor, 1, "one dummy segment resident after construction");
    let report = sim.run({
        let queue = Arc::clone(&queue);
        // Enqueue-only: all three processes push past segment boundaries,
        // so each calls into the arena's reserve-then-allocate slow path.
        move |info| {
            for i in 0..40_u64 {
                let value = ((info.pid as u64) << 8) | i;
                while queue.enqueue(value).is_err() {}
            }
        }
    });
    assert_eq!(
        report.killed,
        vec![0],
        "pid 0 should die at its first slow-path allocation"
    );
    assert!(report.blocked.is_empty(), "blocked: {:?}", report.blocked);
    assert_eq!(budget.overruns(), 0);
    // Reserved units now count exactly the live segments; draining walks
    // every unit except the dummy's back. A leaked mid-allocation
    // reservation would leave the count permanently above the floor.
    while queue.dequeue().is_some() {}
    assert_eq!(
        budget.reserved(),
        floor,
        "the killed process's uncommitted reservation leaked"
    );
}

/// The native analogue: a thread that panics while holding an
/// uncommitted [`ms_queues::Reservation`] releases it during unwinding.
#[test]
fn panicking_thread_releases_uncommitted_reservation_natively() {
    let platform = NativePlatform::new();
    let budget = Arc::new(MemBudget::new(&platform, 4));
    let worker = {
        let budget = Arc::clone(&budget);
        std::thread::spawn(move || {
            let _guard = budget.try_reserve_guard(2).expect("well under limit");
            assert_eq!(budget.reserved(), 2);
            // The guard is still held (uncommitted) when the thread dies.
            panic!("process dies mid-allocation");
        })
    };
    assert!(worker.join().is_err(), "the worker must have panicked");
    assert_eq!(budget.reserved(), 0, "unwinding released the reservation");
    assert_eq!(budget.overruns(), 0);
}
