//! Every algorithm driven on the simulated multiprocessor, with
//! preemption: conservation and determinism hold under interleavings a
//! host scheduler would be unlikely to produce.

use std::sync::{Arc, Mutex};

use ms_queues::{Algorithm, SimConfig, Simulation};

fn preempting_config() -> SimConfig {
    SimConfig {
        processors: 3,
        processes_per_processor: 2,
        quantum_ns: 60_000,
        ..SimConfig::default()
    }
}

fn simulated_stress(algorithm: Algorithm) {
    let sim = Simulation::new(preempting_config());
    let queue = algorithm.build(&sim.platform(), 4_096);
    let consumed: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let report = sim.run({
        let queue = Arc::clone(&queue);
        let consumed = Arc::clone(&consumed);
        move |info| {
            let mut local = Vec::new();
            for i in 0..80_u64 {
                let value = ((info.pid as u64) << 32) | i;
                while queue.enqueue(value).is_err() {}
                loop {
                    if let Some(v) = queue.dequeue() {
                        local.push(v);
                        break;
                    }
                }
            }
            consumed.lock().unwrap().extend(local);
        }
    });
    assert!(report.preemptions > 0, "{algorithm}: config must preempt");
    assert_eq!(queue.dequeue(), None, "{algorithm}: drained");
    let consumed = Arc::try_unwrap(consumed).unwrap().into_inner().unwrap();
    assert_eq!(consumed.len(), 6 * 80, "{algorithm}: count");
    let unique: std::collections::HashSet<u64> = consumed.iter().copied().collect();
    assert_eq!(unique.len(), 6 * 80, "{algorithm}: duplicates");
}

fn simulated_determinism(algorithm: Algorithm) {
    let run = || {
        let sim = Simulation::new(preempting_config());
        let queue = algorithm.build(&sim.platform(), 2_048);
        let report = sim.run({
            let queue = Arc::clone(&queue);
            move |info| {
                for i in 0..40_u64 {
                    let value = ((info.pid as u64) << 32) | i;
                    while queue.enqueue(value).is_err() {}
                    while queue.dequeue().is_none() {}
                }
            }
        });
        (report.elapsed_ns, report.cas_failures, report.preemptions)
    };
    assert_eq!(run(), run(), "{algorithm}: simulation must be reproducible");
}

macro_rules! sim_tests {
    ($($name:ident => $alg:expr),+ $(,)?) => {
        $(
            mod $name {
                use super::*;

                #[test]
                fn conservation_under_preemption() {
                    simulated_stress($alg);
                }

                #[test]
                fn deterministic_execution() {
                    simulated_determinism($alg);
                }
            }
        )+
    };
}

sim_tests! {
    single_lock => Algorithm::SingleLock,
    mellor_crummey => Algorithm::MellorCrummey,
    valois => Algorithm::Valois,
    new_two_lock => Algorithm::NewTwoLock,
    plj => Algorithm::PljNonBlocking,
    new_nonblocking => Algorithm::NewNonBlocking,
    seg_batched => Algorithm::SegBatched,
}
