//! The determinism contract of the parallel frame-stepped backend as a
//! committed test, not a claim: for every registered contender, the
//! `SimReport` produced by the serial token backend is byte-identical to
//! the one produced by the frame-stepped backend at 1, 2, and 8 workers —
//! across a 16-seed schedule sweep, at high processor counts, and under a
//! fault plan that kills a process mid-enqueue.

use std::sync::Arc;

use ms_queues::platform::Platform;
use ms_queues::{Algorithm, AtomicWord, FaultPlan, SimConfig, SimReport, Simulation};

/// Worker counts under test: serial token backend (0) against the
/// frame-stepped backend at one, a few, and many workers.
const WORKER_COUNTS: [usize; 4] = [0, 1, 2, 8];

/// Drives `algorithm` through an enqueue/dequeue pairs workload on a
/// simulation configured by `cfg` (with `sim_workers` overridden per call)
/// and returns the full report.
fn run_report(
    algorithm: Algorithm,
    cfg: SimConfig,
    plan: FaultPlan,
    workers: usize,
    pairs_per_process: u64,
) -> SimReport {
    let cfg = SimConfig {
        sim_workers: Some(workers),
        ..cfg
    };
    let sim = Simulation::with_faults(cfg, plan);
    let platform = sim.platform();
    let queue = algorithm.build(&platform, 1_024);
    sim.run({
        let queue = Arc::clone(&queue);
        move |info| {
            for i in 0..pairs_per_process {
                let value = ((info.pid as u64) << 32) | i;
                while queue.enqueue(value).is_err() {
                    platform.delay(50);
                }
                platform.delay(200);
                while queue.dequeue().is_none() {
                    platform.delay(50);
                }
                platform.delay(200);
            }
        }
    })
}

/// Asserts that every frame-stepped worker count reproduces the serial
/// token backend's report exactly, field for field.
fn assert_backends_agree(
    algorithm: Algorithm,
    cfg: SimConfig,
    plan: &FaultPlan,
    pairs_per_process: u64,
) {
    let serial = run_report(algorithm, cfg, plan.clone(), 0, pairs_per_process);
    for workers in WORKER_COUNTS.into_iter().skip(1) {
        let parallel = run_report(algorithm, cfg, plan.clone(), workers, pairs_per_process);
        assert_eq!(
            serial,
            parallel,
            "{label}: frame-stepped backend with {workers} workers diverged \
             from serial token backend (seed {seed}, {procs} processors)",
            label = algorithm.label(),
            seed = cfg.seed,
            procs = cfg.processors,
        );
    }
}

fn sweep_config(seed: u64) -> SimConfig {
    SimConfig {
        processors: 3,
        processes_per_processor: 2,
        quantum_ns: 60_000,
        seed,
        ..SimConfig::default()
    }
}

/// Sixteen deterministic sweep seeds: the canonical schedule plus fifteen
/// perturbations (same derivation schedule_sweep uses: any fixed distinct
/// values exercise distinct initial clock offsets).
fn sweep_seeds() -> Vec<u64> {
    (0..16).map(|i| i * 0x9e37_79b9).collect()
}

#[test]
fn every_contender_is_byte_identical_across_backends_over_a_seed_sweep() {
    for algorithm in Algorithm::WITH_EXTENSIONS {
        for seed in sweep_seeds() {
            assert_backends_agree(algorithm, sweep_config(seed), &FaultPlan::new(), 20);
        }
    }
}

#[test]
fn backends_agree_at_high_processor_counts() {
    for algorithm in [Algorithm::NewNonBlocking, Algorithm::NewTwoLock] {
        for processors in [64, 128] {
            let cfg = SimConfig {
                processors,
                seed: 7,
                ..SimConfig::default()
            };
            assert_backends_agree(algorithm, cfg, &FaultPlan::new(), 4);
        }
    }
}

#[test]
fn backends_agree_under_a_kill_fault_on_the_nonblocking_queue() {
    // Killing a process inside the M&S enqueue window leaves a recoverable
    // half-finished operation; the run completes either way, and both
    // backends must report the identical kill, clocks, and counters.
    let algorithm = Algorithm::NewNonBlocking;
    for seed in [0, 11, 42, 1_000_003] {
        let plan = FaultPlan::new().kill_at_label(1, algorithm.enqueue_fault_label(), 2);
        assert_backends_agree(algorithm, sweep_config(seed), &plan, 20);
    }
}

#[test]
fn backends_agree_under_a_kill_fault_on_the_lock_queue_with_watchdog() {
    // Killing the lock holder wedges every other process; the watchdog
    // detects the stall and both backends must produce the identical
    // blocked-process verdict at the identical virtual instant.
    let algorithm = Algorithm::SingleLock;
    for seed in [0, 13, 97] {
        let cfg = SimConfig {
            watchdog_ns: 40_000_000,
            ..sweep_config(seed)
        };
        let plan = FaultPlan::new().kill_at_label(0, algorithm.enqueue_fault_label(), 1);
        assert_backends_agree(algorithm, cfg, &plan, 20);
    }
}

/// Drives the MS queue through the pairs workload with a
/// restart-and-catch-up recovery loop layered on: every process posts its
/// progress to a shared cell, and pid 0 polls the simulator's death board,
/// replays each victim's residual share, and stamps the handoff with
/// `mark_recovered`. The death board, the progress cells, and the recovery
/// record are all ordinary scheduler traffic, so the whole recovery
/// schedule — including `recoveries` and the derived time-to-recover —
/// must replay byte-identically on every backend.
fn run_recovery_report(cfg: SimConfig, plan: FaultPlan, workers: usize) -> SimReport {
    const PAIRS: u64 = 20;
    let cfg = SimConfig {
        sim_workers: Some(workers),
        ..cfg
    };
    let sim = Simulation::with_faults(cfg, plan);
    let platform = sim.platform();
    let queue = Algorithm::NewNonBlocking.build(&platform, 1_024);
    let n = sim.num_processes();
    // Untimed setup so every backend sees identical cell ids.
    let progress: Arc<Vec<_>> = Arc::new((0..n).map(|_| platform.alloc_cell(0)).collect());
    let board = Arc::new(platform.death_board());
    sim.run({
        let queue = Arc::clone(&queue);
        let progress = Arc::clone(&progress);
        let board = Arc::clone(&board);
        move |info| {
            let n = info.num_processes;
            let run_pair = |value: u64| {
                while queue.enqueue(value).is_err() {
                    platform.delay(50);
                }
                platform.delay(200);
                while queue.dequeue().is_none() {
                    platform.delay(50);
                }
                platform.delay(200);
            };
            let absorb_new_deaths = |absorbed: &mut [bool]| {
                let notices = board.load();
                for victim in 0..n.min(64) {
                    if victim == info.pid || absorbed[victim] || notices & (1 << victim) == 0 {
                        continue;
                    }
                    absorbed[victim] = true;
                    let done = progress[victim].load();
                    for i in done..PAIRS {
                        // Bit 24 marks replayed values as recovery work,
                        // distinct from anything the victim left in flight.
                        run_pair(((victim as u64) << 32) | (1 << 24) | i);
                    }
                    platform.mark_recovered(victim);
                }
            };
            let mut absorbed = vec![false; n];
            for i in 0..PAIRS {
                run_pair(((info.pid as u64) << 32) | i);
                progress[info.pid].store(i + 1);
                if info.pid == 0 {
                    absorb_new_deaths(&mut absorbed);
                }
            }
            if info.pid == 0 {
                loop {
                    absorb_new_deaths(&mut absorbed);
                    let all_settled =
                        (0..n).all(|v| v == 0 || absorbed[v] || progress[v].load() == PAIRS);
                    if all_settled {
                        break;
                    }
                    platform.delay(200);
                }
            }
        }
    })
}

#[test]
fn backends_agree_under_a_recovery_enabled_kill() {
    for seed in [0, 11, 42] {
        let cfg = SimConfig {
            watchdog_ns: 400_000_000,
            ..sweep_config(seed)
        };
        let plan =
            FaultPlan::new().kill_at_label(1, Algorithm::NewNonBlocking.dequeue_fault_label(), 0);
        let serial = run_recovery_report(cfg, plan.clone(), 0);
        assert_eq!(serial.killed, vec![1], "seed {seed}");
        assert_eq!(
            serial.recoveries.len(),
            1,
            "seed {seed}: pid 0 absorbed the victim"
        );
        assert!(
            serial.time_to_recover_ns().expect("one handoff completed") > 0,
            "seed {seed}"
        );
        for workers in WORKER_COUNTS.into_iter().skip(1) {
            let parallel = run_recovery_report(cfg, plan.clone(), workers);
            assert_eq!(
                serial, parallel,
                "recovery run: frame-stepped backend with {workers} workers \
                 diverged from serial token backend (seed {seed})"
            );
        }
    }
}

/// As [`run_report`] but over `algorithm`'s *repairable* build
/// (DESIGN.md §13): the kill leaves a dead lock holder whose waiters
/// revoke the lock and repair the torn invariant instead of wedging.
/// Revocation probes, death-board loads, and the repair record itself
/// are all ordinary scheduler traffic, so the whole dispossession
/// schedule — `repairs`, `blocked_kinds`, and the derived
/// time-to-repair — must replay byte-identically on every backend.
fn run_repair_report(
    algorithm: Algorithm,
    cfg: SimConfig,
    plan: FaultPlan,
    workers: usize,
) -> SimReport {
    let cfg = SimConfig {
        sim_workers: Some(workers),
        ..cfg
    };
    let sim = Simulation::with_faults(cfg, plan);
    let platform = sim.platform();
    let queue = algorithm.build_repairable(&platform, 1_024);
    sim.run({
        let queue = Arc::clone(&queue);
        move |info| {
            for i in 0..20_u64 {
                let value = ((info.pid as u64) << 32) | i;
                while queue.enqueue(value).is_err() {
                    platform.delay(50);
                }
                platform.delay(200);
                while queue.dequeue().is_none() {
                    platform.delay(50);
                }
                platform.delay(200);
            }
        }
    })
}

#[test]
fn backends_agree_under_a_repair_enabled_kill() {
    for (algorithm, label) in [
        (Algorithm::SingleLock, "single-lock:enq:locked"),
        (Algorithm::NewTwoLock, "two-lock:deq:locked"),
        (Algorithm::MellorCrummey, "mc:enq:window"),
    ] {
        for seed in [0, 11, 42] {
            let cfg = SimConfig {
                watchdog_ns: 400_000_000,
                ..sweep_config(seed)
            };
            let plan = FaultPlan::new().kill_at_label(1, label, 0);
            let serial = run_repair_report(algorithm, cfg, plan.clone(), 0);
            assert_eq!(serial.killed, vec![1], "{algorithm} seed {seed}");
            assert!(
                serial.blocked.is_empty(),
                "{algorithm} seed {seed}: repair must beat the watchdog"
            );
            assert_eq!(serial.repairs.len(), 1, "{algorithm} seed {seed}");
            assert!(
                serial
                    .time_to_repair_ns()
                    .expect("one dispossession completed")
                    > 0,
                "{algorithm} seed {seed}"
            );
            for workers in WORKER_COUNTS.into_iter().skip(1) {
                let parallel = run_repair_report(algorithm, cfg, plan.clone(), workers);
                assert_eq!(
                    serial, parallel,
                    "repair run: frame-stepped backend with {workers} workers \
                     diverged from serial token backend ({algorithm}, seed {seed})"
                );
            }
        }
    }
}

#[test]
fn backends_agree_under_stall_and_preempt_faults() {
    let algorithm = Algorithm::NewNonBlocking;
    let plan = FaultPlan::new()
        .stall_at_label(0, algorithm.enqueue_fault_label(), 1, 2_000_000)
        .preempt_at_label(2, algorithm.enqueue_fault_label(), 3);
    assert_backends_agree(algorithm, sweep_config(5), &plan, 20);
}

// ---------------------------------------------------------------------------
// The scenario engine under the same contract: every new workload shape
// must be byte-identical across backends, and every legacy entry point
// must be byte-identical to its pre-refactor inline loop.
// ---------------------------------------------------------------------------

use ms_queues::{
    run_scenario_simulated, OpenLoopScenario, PairedScenario, PipelineScenario, PolicyScenario,
    RecoveryPolicy, Scenario, SimPlatform, StealingScenario, WorkloadConfig,
};

fn scenario_workload() -> WorkloadConfig {
    WorkloadConfig {
        pairs_total: 240,
        other_work_ns: 500,
        capacity: 1_024,
        mem_budget: None,
    }
}

/// Runs `scenario` through the unified driver at `workers` frame-stepped
/// workers (0 = the serial token backend) and returns the raw report.
fn scenario_report<S: Scenario<SimPlatform> + Clone>(
    algorithm: Algorithm,
    cfg: SimConfig,
    scenario: &S,
    plan: FaultPlan,
    workers: usize,
) -> SimReport {
    let cfg = SimConfig {
        sim_workers: Some(workers),
        ..cfg
    };
    run_scenario_simulated(algorithm, cfg, scenario.clone(), plan)
        .sim_report
        .expect("simulated run carries a report")
}

fn assert_scenario_backends_agree<S: Scenario<SimPlatform> + Clone>(
    name: &str,
    algorithm: Algorithm,
    cfg: SimConfig,
    scenario: &S,
) {
    let serial = scenario_report(algorithm, cfg, scenario, FaultPlan::new(), 0);
    for workers in WORKER_COUNTS.into_iter().skip(1) {
        let parallel = scenario_report(algorithm, cfg, scenario, FaultPlan::new(), workers);
        assert_eq!(
            serial,
            parallel,
            "{name} scenario on {label}: frame-stepped backend with {workers} workers \
             diverged from serial token backend (seed {seed})",
            label = algorithm.label(),
            seed = cfg.seed,
        );
    }
}

#[test]
fn stealing_scenario_is_byte_identical_across_backends() {
    let scenario = StealingScenario {
        workload: scenario_workload(),
    };
    for algorithm in [Algorithm::NewNonBlocking, Algorithm::NewTwoLock] {
        for seed in [0, 11, 42] {
            assert_scenario_backends_agree("stealing", algorithm, sweep_config(seed), &scenario);
        }
    }
}

#[test]
fn pipeline_scenario_is_byte_identical_across_backends() {
    let scenario = PipelineScenario {
        workload: scenario_workload(),
        stages: 3,
    };
    for algorithm in [Algorithm::NewNonBlocking, Algorithm::SingleLock] {
        for seed in [0, 11, 42] {
            assert_scenario_backends_agree("pipeline", algorithm, sweep_config(seed), &scenario);
        }
    }
}

#[test]
fn open_loop_scenario_is_byte_identical_across_backends() {
    // The latency samples ride inside the SimReport (its `latencies`
    // field), so this equality also pins the whole latency distribution
    // — percentiles included — across backends.
    let scenario = OpenLoopScenario {
        workload: scenario_workload(),
        mean_gap_ns: 2_000,
        seed: 42,
    };
    for algorithm in [Algorithm::NewNonBlocking, Algorithm::NewTwoLock] {
        for seed in [0, 11, 42] {
            assert_scenario_backends_agree("open-loop", algorithm, sweep_config(seed), &scenario);
        }
    }
}

#[test]
fn stealing_scenario_backends_agree_under_a_producer_kill() {
    let scenario = StealingScenario {
        workload: scenario_workload(),
    };
    let cfg = SimConfig {
        watchdog_ns: 400_000_000,
        ..sweep_config(11)
    };
    let plan = FaultPlan::new().kill_at_label(1, "msq:enq:window", 0);
    let serial = scenario_report(Algorithm::NewNonBlocking, cfg, &scenario, plan.clone(), 0);
    assert_eq!(serial.killed, vec![1]);
    for workers in WORKER_COUNTS.into_iter().skip(1) {
        let parallel = scenario_report(
            Algorithm::NewNonBlocking,
            cfg,
            &scenario,
            plan.clone(),
            workers,
        );
        assert_eq!(
            serial, parallel,
            "killed stealing run: frame-stepped backend with {workers} workers diverged"
        );
    }
}

/// The pre-refactor `run_simulated` loop, inlined verbatim: the legacy
/// entry points are now thin wrappers over the scenario engine, so the
/// old inline driver only survives here, as the fixture pinning the
/// refactor byte-identical.
fn legacy_paired_report(
    algorithm: Algorithm,
    cfg: SimConfig,
    plan: FaultPlan,
    workload: &WorkloadConfig,
) -> SimReport {
    let sim = Simulation::with_faults(cfg, plan);
    let platform = sim.platform();
    let queue = algorithm.build(&platform, workload.capacity);
    let pairs_total = workload.pairs_total;
    let other_work_ns = workload.other_work_ns;
    sim.run({
        let queue = Arc::clone(&queue);
        move |info| {
            let n = info.num_processes as u64;
            let my_pairs = pairs_total / n + u64::from((info.pid as u64) < pairs_total % n);
            for i in 0..my_pairs {
                let value = ((info.pid as u64) << 40) | i;
                while queue.enqueue(value).is_err() {
                    platform.cpu_relax();
                }
                platform.delay(other_work_ns);
                while queue.dequeue().is_none() {
                    platform.cpu_relax();
                }
                platform.delay(other_work_ns);
            }
        }
    })
}

/// The pre-refactor `run_simulated_with_policy` loop, inlined verbatim
/// (progress cells, death-board polling, residual-share replay with the
/// recovery bit, and the survivor's watch loop).
fn legacy_policy_report(
    algorithm: Algorithm,
    cfg: SimConfig,
    plan: FaultPlan,
    workload: &WorkloadConfig,
    survivor: usize,
    repairable: bool,
) -> SimReport {
    const RECOVERY_BIT: u64 = 1 << 39;
    let sim = Simulation::with_faults(cfg, plan);
    let platform = sim.platform();
    let queue = if repairable {
        algorithm.build_repairable(&platform, workload.capacity)
    } else {
        algorithm.build(&platform, workload.capacity)
    };
    let n = sim.num_processes();
    let progress: Arc<Vec<_>> = Arc::new((0..n).map(|_| platform.alloc_cell(0)).collect());
    let board = Arc::new(platform.death_board());
    let pairs_total = workload.pairs_total;
    let other_work_ns = workload.other_work_ns;
    let share =
        move |pid: usize| pairs_total / n as u64 + u64::from((pid as u64) < pairs_total % n as u64);
    sim.run({
        let queue = Arc::clone(&queue);
        let progress = Arc::clone(&progress);
        let board = Arc::clone(&board);
        move |info| {
            let my_pairs = share(info.pid);
            let mut absorbed = vec![false; n];
            let run_pair = |value: u64| {
                while queue.enqueue(value).is_err() {
                    platform.cpu_relax();
                }
                platform.delay(other_work_ns);
                while queue.dequeue().is_none() {
                    platform.cpu_relax();
                }
                platform.delay(other_work_ns);
            };
            let absorb_new_deaths = |absorbed: &mut [bool]| {
                let notices = board.load();
                for victim in 0..n.min(64) {
                    if victim == info.pid || absorbed[victim] || notices & (1 << victim) == 0 {
                        continue;
                    }
                    absorbed[victim] = true;
                    let done = progress[victim].load();
                    for i in done..share(victim) {
                        run_pair(((victim as u64) << 40) | RECOVERY_BIT | i);
                    }
                    platform.mark_recovered(victim);
                }
            };
            for i in 0..my_pairs {
                run_pair(((info.pid as u64) << 40) | i);
                progress[info.pid].store(i + 1);
                if info.pid == survivor {
                    absorb_new_deaths(&mut absorbed);
                }
            }
            if info.pid == survivor {
                loop {
                    absorb_new_deaths(&mut absorbed);
                    let all_settled = (0..n)
                        .all(|v| v == info.pid || absorbed[v] || progress[v].load() == share(v));
                    if all_settled {
                        break;
                    }
                    platform.delay(other_work_ns);
                }
            }
        }
    })
}

#[test]
fn unified_driver_reproduces_the_legacy_paired_loop_byte_identically() {
    // `run_simulated`, `run_simulated_faulted`, and the figure sweeps all
    // reduce to PairedScenario through the unified driver; the refactor
    // holds only if that path replays the old inline loop exactly —
    // including under a kill plan.
    let workload = scenario_workload();
    for algorithm in Algorithm::WITH_EXTENSIONS {
        for seed in [0, 11, 42] {
            let cfg = sweep_config(seed);
            let old = legacy_paired_report(algorithm, cfg, FaultPlan::new(), &workload);
            let new = scenario_report(
                algorithm,
                cfg,
                &PairedScenario { workload },
                FaultPlan::new(),
                0,
            );
            assert_eq!(
                old, new,
                "paired scenario diverged from the pre-refactor loop \
                 ({algorithm}, seed {seed})"
            );
        }
    }
    let cfg = SimConfig {
        watchdog_ns: 400_000_000,
        ..sweep_config(11)
    };
    let algorithm = Algorithm::NewNonBlocking;
    let plan = FaultPlan::new().kill_at_label(1, algorithm.enqueue_fault_label(), 2);
    let old = legacy_paired_report(algorithm, cfg, plan.clone(), &scenario_workload());
    let new = scenario_report(
        algorithm,
        cfg,
        &PairedScenario {
            workload: scenario_workload(),
        },
        plan,
        0,
    );
    assert_eq!(
        old, new,
        "faulted paired scenario diverged from the old loop"
    );
}

#[test]
fn unified_driver_reproduces_the_legacy_policy_loop_byte_identically() {
    // `run_simulated_recovered` / `run_simulated_repaired` reduce to
    // PolicyScenario; pin both the plain and the repairable builds, each
    // under the kill that exercises the recovery path.
    let workload = scenario_workload();
    let cfg = SimConfig {
        watchdog_ns: 400_000_000,
        ..sweep_config(0)
    };
    for (algorithm, label, repairable) in [
        (
            Algorithm::NewNonBlocking,
            Algorithm::NewNonBlocking.dequeue_fault_label(),
            false,
        ),
        (Algorithm::SingleLock, "single-lock:enq:locked", true),
        (Algorithm::NewTwoLock, "two-lock:deq:locked", true),
    ] {
        let plan = FaultPlan::new().kill_at_label(1, label, 0);
        let old = legacy_policy_report(algorithm, cfg, plan.clone(), &workload, 0, repairable);
        assert_eq!(old.killed, vec![1], "{algorithm}");
        let new = scenario_report(
            algorithm,
            cfg,
            &PolicyScenario {
                workload,
                policy: RecoveryPolicy::designated(0),
                repairable,
            },
            plan,
            0,
        );
        assert_eq!(
            old, new,
            "policy scenario (repairable={repairable}) diverged from the \
             pre-refactor loop ({algorithm})"
        );
    }
}
