//! The paper's Valois memory-exhaustion observation (Section 1), as a
//! test: "Because of the pointer held by the delayed process, neither the
//! node referenced by that pointer nor any of its successors can be
//! freed. It is therefore possible to run out of memory even if the
//! number of items in the queue is bounded by a constant."
//!
//! Scaled from the paper's 64,000-node/10^7-op experiment to keep CI fast;
//! `examples/valois_leak.rs` runs the full-size version.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ms_queues::{ConcurrentWordQueue, NativePlatform, ValoisQueue, WordMsQueue};

const POOL: u32 = 2_000;
const MAX_QUEUE_LEN: u64 = 12;

/// Churns the queue while keeping it at most `MAX_QUEUE_LEN` long.
/// Returns `Err(ops_done)` on pool exhaustion.
fn churn(queue: &dyn ConcurrentWordQueue, ops: u64) -> Result<(), u64> {
    let mut len = 0u64;
    for i in 0..ops {
        if len < MAX_QUEUE_LEN {
            queue.enqueue(i).map_err(|_| i)?;
            len += 1;
        } else {
            assert!(queue.dequeue().is_some(), "queue holds items");
            len -= 1;
        }
    }
    Ok(())
}

#[test]
fn stalled_reader_exhausts_valois_pool() {
    let platform = NativePlatform::new();
    let queue = Arc::new(ValoisQueue::with_capacity(&platform, POOL));
    queue.enqueue(u64::MAX).unwrap();

    let pinned = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let reader = {
        let queue = Arc::clone(&queue);
        let pinned = Arc::clone(&pinned);
        let release = Arc::clone(&release);
        std::thread::spawn(move || {
            queue.with_pinned_head(|| {
                pinned.store(true, Ordering::Release);
                while !release.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            })
        })
    };
    while !pinned.load(Ordering::Acquire) {
        std::thread::yield_now();
    }

    // With one reader stalled, bounded-length churn must exhaust the pool:
    // every node that passes through the queue lands on the pinned chain.
    let outcome = churn(&*queue, 100_000);
    assert!(
        outcome.is_err(),
        "pool of {POOL} nodes should be exhausted by a stalled reader"
    );

    release.store(true, Ordering::Release);
    reader.join().unwrap();

    // Once the reader lets go the chain unravels and churn succeeds again.
    while queue.dequeue().is_some() {}
    churn(&*queue, 100_000).expect("unpinned queue must sustain churn");
}

#[test]
fn ms_queue_sustains_the_same_churn_with_a_tiny_pool() {
    // The contrast the paper draws: the MS queue reuses dequeued nodes
    // immediately, so max-length + 1 nodes suffice forever.
    let platform = NativePlatform::new();
    let queue = WordMsQueue::with_capacity(&platform, (MAX_QUEUE_LEN + 1) as u32);
    churn(&queue, 1_000_000).expect("MS queue must never exhaust");
}

#[test]
fn valois_pool_is_exhausted_only_while_pinned() {
    // Without any stalled reader the Valois queue also sustains unbounded
    // churn in a bounded pool (tail keeps getting helped forward, chains
    // reclaim): the flaw needs a delayed process, matching the paper.
    let platform = NativePlatform::new();
    let queue = ValoisQueue::with_capacity(&platform, 64);
    churn(&queue, 200_000).expect("unpinned Valois queue must sustain churn");
}
