//! Small-scale, fully deterministic versions of the paper's evaluation
//! claims. The simulator is deterministic, so these assertions are stable;
//! they use reduced op counts (the shapes, not the absolute values, are
//! what the reproduction must preserve — see EXPERIMENTS.md for the
//! full-size runs).

use ms_queues::{run_simulated, run_simulated_batched, Algorithm, SimConfig, WorkloadConfig};

fn workload() -> WorkloadConfig {
    WorkloadConfig {
        pairs_total: 3_000,
        other_work_ns: 6_000,
        capacity: 2_048,
        mem_budget: None,
    }
}

fn dedicated(processors: usize) -> SimConfig {
    SimConfig {
        processors,
        ..SimConfig::default()
    }
}

fn multiprogrammed(processors: usize, level: usize) -> SimConfig {
    SimConfig {
        processors,
        processes_per_processor: level,
        // Scale the paper's 10 ms quantum with the reduced op count, as the
        // figures harness does.
        quantum_ns: 10_000_000 * 3_000 / 1_000_000,
        ctx_switch_ns: 75,
        ..SimConfig::default()
    }
}

fn net(algorithm: Algorithm, config: SimConfig) -> f64 {
    run_simulated(algorithm, config, &workload()).net_secs_per_million_pairs()
}

#[test]
fn figure3_nonblocking_beats_single_lock_at_scale() {
    // "the new non-blocking queue consistently outperforms the best known
    // alternatives ... when three or more processors are active".
    let p = 8;
    let ms = net(Algorithm::NewNonBlocking, dedicated(p));
    let single = net(Algorithm::SingleLock, dedicated(p));
    assert!(
        ms < single,
        "MS queue ({ms:.3}s) must beat the single lock ({single:.3}s) at {p} processors"
    );
}

#[test]
fn figure3_two_lock_beats_single_lock_when_contended() {
    // "The two-lock algorithm outperforms the one-lock algorithm when more
    // than 5 processors are active on a dedicated system."
    let p = 8;
    let two = net(Algorithm::NewTwoLock, dedicated(p));
    let single = net(Algorithm::SingleLock, dedicated(p));
    assert!(
        two < single,
        "two-lock ({two:.3}s) must beat single lock ({single:.3}s) at {p} processors"
    );
}

#[test]
fn figure3_valois_pays_the_reference_count_tax() {
    // Valois performs two extra atomic RMWs per pointer acquisition; at
    // low processor counts it is the slowest algorithm in Figure 3.
    let p = 2;
    let valois = net(Algorithm::Valois, dedicated(p));
    let ms = net(Algorithm::NewNonBlocking, dedicated(p));
    assert!(
        valois > ms,
        "Valois ({valois:.3}s) must trail the MS queue ({ms:.3}s) at {p} processors"
    );
}

#[test]
fn figure3_single_processor_times_are_low() {
    // "With only one processor, memory references ... hit in the cache,
    // and completion times are very low." Every algorithm's p=1 time must
    // be well below its own contended (p=2) time.
    for algorithm in Algorithm::ALL {
        let one = net(algorithm, dedicated(1));
        let two = net(algorithm, dedicated(2));
        assert!(
            one < two,
            "{algorithm}: p=1 ({one:.3}s) should be below p=2 ({two:.3}s)"
        );
    }
}

#[test]
fn figures4_5_blocking_algorithms_degrade_under_multiprogramming() {
    // "the blocking algorithms fare much worse in the presence of
    // multiprogramming" — and the degradation grows with the level.
    let p = 4;
    for algorithm in [Algorithm::SingleLock, Algorithm::NewTwoLock] {
        let dedicated_time = net(algorithm, dedicated(p));
        let multi2 = net(algorithm, multiprogrammed(p, 2));
        let multi3 = net(algorithm, multiprogrammed(p, 3));
        assert!(
            multi2 > dedicated_time * 1.5,
            "{algorithm}: 2x multiprogramming must hurt ({dedicated_time:.3} -> {multi2:.3})"
        );
        assert!(
            multi3 > multi2,
            "{algorithm}: degradation must grow with the level ({multi2:.3} -> {multi3:.3})"
        );
    }
}

#[test]
fn figures4_5_nonblocking_algorithms_shrug_off_multiprogramming() {
    let p = 4;
    for algorithm in [Algorithm::NewNonBlocking, Algorithm::PljNonBlocking] {
        let dedicated_time = net(algorithm, dedicated(p));
        let multi3 = net(algorithm, multiprogrammed(p, 3));
        assert!(
            multi3 < dedicated_time * 1.5,
            "{algorithm}: non-blocking must stay near dedicated performance \
             ({dedicated_time:.3} -> {multi3:.3})"
        );
    }
}

#[test]
fn figures4_5_nonblocking_beats_blocking_under_multiprogramming() {
    // The paper's core recommendation.
    let p = 4;
    let ms = net(Algorithm::NewNonBlocking, multiprogrammed(p, 3));
    for blocking in [
        Algorithm::SingleLock,
        Algorithm::NewTwoLock,
        Algorithm::MellorCrummey,
    ] {
        let other = net(blocking, multiprogrammed(p, 3));
        assert!(
            ms < other,
            "MS queue ({ms:.3}s) must beat {blocking} ({other:.3}s) at 3x multiprogramming"
        );
    }
}

#[test]
fn batch_mode_sweep_covers_one_through_twelve_processors() {
    // The batch-aware analogue of the Figure 3 sweep (mirrored full-size in
    // `batchbench`'s `sim_batch_workload_sweep`): every batch-capable
    // algorithm completes the Section 4 workload in batch mode at each
    // machine size of the paper's 1–12-processor axis, conserving values
    // (checked inside the harness) and reporting sane statistics.
    let workload = WorkloadConfig {
        pairs_total: 1_200,
        ..workload()
    };
    for algorithm in [
        Algorithm::SegBatched,
        Algorithm::Sharded,
        Algorithm::NewNonBlocking,
    ] {
        let mut serial_elapsed = 0_u64;
        for processors in [1_usize, 2, 4, 6, 8, 12] {
            let point = run_simulated_batched(algorithm, dedicated(processors), &workload, 32);
            assert_eq!(point.processors, processors);
            assert!(
                point.elapsed_ns > 0,
                "{algorithm} at {processors}p reported zero virtual time"
            );
            assert!(
                (0.0..=1.0).contains(&point.miss_rate),
                "{algorithm} at {processors}p: miss rate {} out of range",
                point.miss_rate
            );
            if processors == 1 {
                serial_elapsed = point.elapsed_ns;
            } else if algorithm != Algorithm::NewNonBlocking {
                // For the batch-native algorithms (one splice CAS per
                // batch), splitting fixed work across processors must beat
                // the serial run at every machine size. Virtual time is
                // not monotone between sizes (contention grows with the
                // processor count), and the MS queue — which emulates
                // batches one CAS at a time — may lose its parallelism
                // gains to contention, so neither gets this assertion.
                assert!(
                    point.elapsed_ns < serial_elapsed,
                    "{algorithm}: {processors}p elapsed {} exceeds the \
                     serial run's {serial_elapsed}",
                    point.elapsed_ns
                );
            }
        }
    }
}

#[test]
fn batching_amortizes_contention_at_scale() {
    // The point of batch mode: at 12 processors a 32-batch run must beat
    // the same algorithm moving the same pairs one at a time.
    let workload = WorkloadConfig {
        pairs_total: 1_200,
        ..workload()
    };
    let single = run_simulated_batched(Algorithm::SegBatched, dedicated(12), &workload, 1);
    let batched = run_simulated_batched(Algorithm::SegBatched, dedicated(12), &workload, 32);
    assert!(
        batched.elapsed_ns < single.elapsed_ns,
        "batch 32 ({}) must beat batch 1 ({}) at 12 processors",
        batched.elapsed_ns,
        single.elapsed_ns
    );
}

#[test]
fn recovery_asymmetry_survivable_absorbs_residual_lock_based_flagged() {
    // The committed shape of `BENCH_fault.json`'s recovery cells, at
    // reduced scale: kill pid 1 at its first pass through each contender's
    // dequeue-side fault point and let pid 0 run restart-and-catch-up.
    // Wherever the dequeue-window death is survivable — the four
    // non-blocking queues, both extensions, and Mellor-Crummey (whose
    // dequeue tears nothing even though its enqueue window is blocking) —
    // the recovery cost is exactly the victim's residual share and a
    // positive time-to-recover is stamped. On the queues whose dequeue
    // window is a held lock, the watchdog flags the wedged survivors and
    // nothing is recovered.
    use ms_queues::{run_simulated_recovered, FaultPlan, RecoveryPolicy};
    let workload = WorkloadConfig {
        pairs_total: 1_200,
        ..workload()
    };
    for algorithm in Algorithm::WITH_EXTENSIONS {
        let point = run_simulated_recovered(
            algorithm,
            SimConfig {
                processors: 4,
                watchdog_ns: 400_000_000,
                ..SimConfig::default()
            },
            &workload,
            FaultPlan::new().kill_at_label(1, algorithm.dequeue_fault_label(), 0),
            RecoveryPolicy::designated(0),
        );
        assert_eq!(point.killed, vec![1], "{algorithm}: the kill must fire");
        if algorithm.dequeue_death_survivable() {
            assert!(
                point.survivors_completed(),
                "{algorithm}: blocked {:?}",
                point.blocked
            );
            assert!(point.recovered_pairs > 0, "{algorithm}");
            assert_eq!(
                point.pairs_completed + point.recovered_pairs,
                1_200,
                "{algorithm}: recovery cost must be exactly the residual share"
            );
            assert!(
                point.time_to_recover_ns.expect("handoff stamped") > 0,
                "{algorithm}"
            );
        } else {
            assert!(
                !point.survivors_completed(),
                "{algorithm}: a dead H_lock holder must wedge the survivors"
            );
            assert_eq!(point.recovered_pairs, 0, "{algorithm}");
            assert_eq!(point.time_to_recover_ns, None, "{algorithm}");
        }
    }
}

#[test]
fn shape_is_stable_under_cost_model_perturbation() {
    // DESIGN.md claims the qualitative result is not an artifact of the
    // default cost constants: double and halve the miss cost.
    for t_miss_ns in [60, 240] {
        let config = SimConfig {
            processors: 8,
            t_miss_ns,
            ..SimConfig::default()
        };
        let ms = run_simulated(Algorithm::NewNonBlocking, config, &workload())
            .net_secs_per_million_pairs();
        let single =
            run_simulated(Algorithm::SingleLock, config, &workload()).net_secs_per_million_pairs();
        assert!(
            ms < single,
            "t_miss={t_miss_ns}: MS ({ms:.3}s) must still beat single lock ({single:.3}s)"
        );
    }
}
