//! Small-scale, fully deterministic versions of the paper's evaluation
//! claims. The simulator is deterministic, so these assertions are stable;
//! they use reduced op counts (the shapes, not the absolute values, are
//! what the reproduction must preserve — see EXPERIMENTS.md for the
//! full-size runs).

use ms_queues::{run_simulated, Algorithm, SimConfig, WorkloadConfig};

fn workload() -> WorkloadConfig {
    WorkloadConfig {
        pairs_total: 3_000,
        other_work_ns: 6_000,
        capacity: 2_048,
    }
}

fn dedicated(processors: usize) -> SimConfig {
    SimConfig {
        processors,
        ..SimConfig::default()
    }
}

fn multiprogrammed(processors: usize, level: usize) -> SimConfig {
    SimConfig {
        processors,
        processes_per_processor: level,
        // Scale the paper's 10 ms quantum with the reduced op count, as the
        // figures harness does.
        quantum_ns: 10_000_000 * 3_000 / 1_000_000,
        ctx_switch_ns: 75,
        ..SimConfig::default()
    }
}

fn net(algorithm: Algorithm, config: SimConfig) -> f64 {
    run_simulated(algorithm, config, &workload()).net_secs_per_million_pairs()
}

#[test]
fn figure3_nonblocking_beats_single_lock_at_scale() {
    // "the new non-blocking queue consistently outperforms the best known
    // alternatives ... when three or more processors are active".
    let p = 8;
    let ms = net(Algorithm::NewNonBlocking, dedicated(p));
    let single = net(Algorithm::SingleLock, dedicated(p));
    assert!(
        ms < single,
        "MS queue ({ms:.3}s) must beat the single lock ({single:.3}s) at {p} processors"
    );
}

#[test]
fn figure3_two_lock_beats_single_lock_when_contended() {
    // "The two-lock algorithm outperforms the one-lock algorithm when more
    // than 5 processors are active on a dedicated system."
    let p = 8;
    let two = net(Algorithm::NewTwoLock, dedicated(p));
    let single = net(Algorithm::SingleLock, dedicated(p));
    assert!(
        two < single,
        "two-lock ({two:.3}s) must beat single lock ({single:.3}s) at {p} processors"
    );
}

#[test]
fn figure3_valois_pays_the_reference_count_tax() {
    // Valois performs two extra atomic RMWs per pointer acquisition; at
    // low processor counts it is the slowest algorithm in Figure 3.
    let p = 2;
    let valois = net(Algorithm::Valois, dedicated(p));
    let ms = net(Algorithm::NewNonBlocking, dedicated(p));
    assert!(
        valois > ms,
        "Valois ({valois:.3}s) must trail the MS queue ({ms:.3}s) at {p} processors"
    );
}

#[test]
fn figure3_single_processor_times_are_low() {
    // "With only one processor, memory references ... hit in the cache,
    // and completion times are very low." Every algorithm's p=1 time must
    // be well below its own contended (p=2) time.
    for algorithm in Algorithm::ALL {
        let one = net(algorithm, dedicated(1));
        let two = net(algorithm, dedicated(2));
        assert!(
            one < two,
            "{algorithm}: p=1 ({one:.3}s) should be below p=2 ({two:.3}s)"
        );
    }
}

#[test]
fn figures4_5_blocking_algorithms_degrade_under_multiprogramming() {
    // "the blocking algorithms fare much worse in the presence of
    // multiprogramming" — and the degradation grows with the level.
    let p = 4;
    for algorithm in [Algorithm::SingleLock, Algorithm::NewTwoLock] {
        let dedicated_time = net(algorithm, dedicated(p));
        let multi2 = net(algorithm, multiprogrammed(p, 2));
        let multi3 = net(algorithm, multiprogrammed(p, 3));
        assert!(
            multi2 > dedicated_time * 1.5,
            "{algorithm}: 2x multiprogramming must hurt ({dedicated_time:.3} -> {multi2:.3})"
        );
        assert!(
            multi3 > multi2,
            "{algorithm}: degradation must grow with the level ({multi2:.3} -> {multi3:.3})"
        );
    }
}

#[test]
fn figures4_5_nonblocking_algorithms_shrug_off_multiprogramming() {
    let p = 4;
    for algorithm in [Algorithm::NewNonBlocking, Algorithm::PljNonBlocking] {
        let dedicated_time = net(algorithm, dedicated(p));
        let multi3 = net(algorithm, multiprogrammed(p, 3));
        assert!(
            multi3 < dedicated_time * 1.5,
            "{algorithm}: non-blocking must stay near dedicated performance \
             ({dedicated_time:.3} -> {multi3:.3})"
        );
    }
}

#[test]
fn figures4_5_nonblocking_beats_blocking_under_multiprogramming() {
    // The paper's core recommendation.
    let p = 4;
    let ms = net(Algorithm::NewNonBlocking, multiprogrammed(p, 3));
    for blocking in [
        Algorithm::SingleLock,
        Algorithm::NewTwoLock,
        Algorithm::MellorCrummey,
    ] {
        let other = net(blocking, multiprogrammed(p, 3));
        assert!(
            ms < other,
            "MS queue ({ms:.3}s) must beat {blocking} ({other:.3}s) at 3x multiprogramming"
        );
    }
}

#[test]
fn shape_is_stable_under_cost_model_perturbation() {
    // DESIGN.md claims the qualitative result is not an artifact of the
    // default cost constants: double and halve the miss cost.
    for t_miss_ns in [60, 240] {
        let config = SimConfig {
            processors: 8,
            t_miss_ns,
            ..SimConfig::default()
        };
        let ms = run_simulated(Algorithm::NewNonBlocking, config, &workload())
            .net_secs_per_million_pairs();
        let single =
            run_simulated(Algorithm::SingleLock, config, &workload()).net_secs_per_million_pairs();
        assert!(
            ms < single,
            "t_miss={t_miss_ns}: MS ({ms:.3}s) must still beat single lock ({single:.3}s)"
        );
    }
}
