//! The [`MemBudget`] analogue of `valois_exhaustion.rs`: drive a queue
//! into *budget* exhaustion (rather than pool exhaustion) and prove the
//! failure mode is backpressure, not a panic or a lost value — and that
//! the queue recovers fully once dequeues release segments.
//!
//! Two queue families are covered: the heap `SegQueue` (hazard-pointer
//! reclamation, `try_enqueue`/`try_enqueue_batch` backpressure) natively,
//! and the arena-backed `WordSegQueue` (generation-tagged recycling,
//! `QueueFull` backpressure) both natively and inside the deterministic
//! simulator — the budget's counters are platform cells, so the same
//! protocol runs in both worlds.

use std::sync::Arc;

use ms_queues::{
    ConcurrentWordQueue, MemBudget, NativePlatform, QueueFull, SegConfig, SegQueue, SimConfig,
    Simulation, WordSegQueue,
};

/// Budget for every cell: a handful of segments, far below what the
/// workload would like.
const LIMIT: u64 = 4;

#[test]
fn heap_seg_queue_backpressures_at_the_budget_and_recovers() {
    let budget = Arc::new(MemBudget::new(&NativePlatform::new(), LIMIT));
    let queue: SegQueue<u64> = SegQueue::with_config_and_budget(
        SegConfig {
            seg_size: 2,
            ..SegConfig::DEFAULT
        },
        Arc::clone(&budget),
    );

    // Fill to the brim: LIMIT segments x 2 slots fit, the next enqueue is
    // denied with the value handed back intact.
    let mut accepted = 0_u64;
    let rejected = loop {
        match queue.try_enqueue(accepted) {
            Ok(()) => accepted += 1,
            Err(v) => break v,
        }
    };
    assert_eq!(accepted, LIMIT * 2);
    assert_eq!(rejected, accepted, "no value may be lost on denial");
    assert!(budget.denials() > 0, "exhaustion was metered");
    assert!(budget.reserved() <= LIMIT, "the bound held throughout");
    assert_eq!(budget.overruns(), 0, "no fallible path may overrun");

    // Sustained churn at the boundary. A single dequeue does not free a
    // segment (units come back only when a whole segment drains), so
    // denials keep happening — each one must hand the value back so the
    // caller can retry after making room, and FIFO must survive it all.
    let mut next_in = accepted;
    let mut next_out = 0_u64;
    let mut len = accepted;
    for _ in 0..5_000 {
        if len < accepted {
            match queue.try_enqueue(next_in) {
                Ok(()) => {
                    next_in += 1;
                    len += 1;
                }
                Err(v) => {
                    assert_eq!(v, next_in, "denied value intact");
                    assert_eq!(queue.dequeue(), Some(next_out), "FIFO under denial");
                    next_out += 1;
                    len -= 1;
                }
            }
        } else {
            assert_eq!(queue.dequeue(), Some(next_out), "FIFO across backpressure");
            next_out += 1;
            len -= 1;
        }
        assert!(budget.reserved() <= LIMIT);
    }
    assert!(
        next_in > accepted,
        "churn made progress past the first fill"
    );

    // Full drain, then the queue works as if never exhausted.
    while queue.dequeue().is_some() {}
    queue.try_enqueue(u64::MAX).expect("recovered after drain");
    assert_eq!(queue.dequeue(), Some(u64::MAX));
}

#[test]
fn word_seg_queue_backpressures_at_the_budget_natively() {
    let platform = NativePlatform::new();
    let budget = Arc::new(MemBudget::new(&platform, LIMIT));
    let queue = WordSegQueue::with_capacity_and_budget(&platform, 4_096, Arc::clone(&budget));

    let mut accepted = 0_u64;
    let rejected = loop {
        match queue.enqueue(accepted) {
            Ok(()) => accepted += 1,
            Err(QueueFull(v)) => break v,
        }
    };
    assert_eq!(rejected, accepted, "the rejected value comes back intact");
    assert!(
        accepted >= u64::from(queue.seg_size()),
        "at least one full segment beyond the dummy fits, got {accepted}"
    );
    assert!(budget.denials() > 0);
    assert!(budget.reserved() <= LIMIT);

    // Bounded-length churn (the valois_exhaustion workload) right at the
    // budget boundary must sustain indefinitely: dequeues recycle
    // segments through the arena, crediting units back. Transient
    // `QueueFull` at the boundary (a segment frees only when fully
    // drained) is answered by dequeuing, never by panicking or losing
    // the value.
    let mut next_in = accepted;
    let mut next_out = 0_u64;
    let mut len = accepted;
    for _ in 0..100_000_u64 {
        if len < accepted {
            match queue.enqueue(next_in) {
                Ok(()) => {
                    next_in += 1;
                    len += 1;
                }
                Err(QueueFull(v)) => {
                    assert_eq!(v, next_in, "denied value intact");
                    assert_eq!(queue.dequeue(), Some(next_out), "FIFO under denial");
                    next_out += 1;
                    len -= 1;
                }
            }
        } else {
            assert_eq!(queue.dequeue(), Some(next_out), "FIFO across backpressure");
            next_out += 1;
            len -= 1;
        }
        debug_assert!(budget.reserved() <= LIMIT);
    }
    while queue.dequeue().is_some() {}
    assert!(budget.reserved() <= LIMIT);
}

#[test]
fn word_seg_queue_backpressures_at_the_budget_under_simulation() {
    let sim = Simulation::new(SimConfig {
        processors: 2,
        ..SimConfig::default()
    });
    let platform = sim.platform();
    let budget = Arc::new(MemBudget::new(&platform, LIMIT));
    let queue = Arc::new(WordSegQueue::with_capacity_and_budget(
        &platform,
        4_096,
        Arc::clone(&budget),
    ));
    sim.run({
        let queue = Arc::clone(&queue);
        move |info| {
            if info.pid != 0 {
                // The second processor contends for the budget too: its
                // denials must also surface as QueueFull, never a panic.
                for i in 0..64_u64 {
                    if queue.enqueue(u64::MAX - i).is_ok() {
                        queue.dequeue();
                    }
                }
                return;
            }
            let mut sent = 0_u64;
            let rejected = loop {
                match queue.enqueue(sent) {
                    Ok(()) => sent += 1,
                    Err(QueueFull(v)) => break v,
                }
            };
            assert_eq!(rejected, sent, "no value may be lost on denial");
            // Drain everything this process can see and prove recovery.
            while queue.dequeue().is_some() {}
            queue.enqueue(u64::MAX).expect("recovered after drain");
            queue.dequeue().expect("the probe value is retrievable");
        }
    });
    assert!(budget.denials() > 0, "the simulated run hit the budget");
    assert!(
        budget.reserved() <= LIMIT,
        "the bound held under simulation"
    );
    assert!(budget.peak() <= LIMIT);
    assert_eq!(queue.dequeue(), None, "the run drained the queue");
}

/// **Budget conservation across a mid-allocation death.** The arena's
/// `seg:alloc:reserved` fault point sits exactly between reserving a
/// budget unit and committing it to a popped segment. A process killed
/// there unwinds through the RAII [`ms_queues::Reservation`] guard, which
/// must credit the unit back — otherwise the budget leaks one unit per
/// death and the global bound rots. After the survivors finish and the
/// queue drains, exactly the dummy segment may remain resident.
#[test]
fn kill_between_reserve_and_commit_credits_the_unit_back() {
    use ms_queues::FaultPlan;

    let sim = Simulation::with_faults(
        SimConfig {
            processors: 3,
            ..SimConfig::default()
        },
        FaultPlan::new().kill_at_label(0, "seg:alloc:reserved", 0),
    );
    let platform = sim.platform();
    let budget = Arc::new(MemBudget::new(&platform, LIMIT));
    let queue = Arc::new(WordSegQueue::with_capacity_and_budget(
        &platform,
        4_096,
        Arc::clone(&budget),
    ));
    let report = sim.run({
        let queue = Arc::clone(&queue);
        move |info| {
            // A full pairs workload: 200 pairs per process crosses the
            // 32-slot segment boundary often enough that every process
            // allocates segments (and pid 0 dies at its first attempt).
            for i in 0..200_u64 {
                let value = ((info.pid as u64) << 40) | i;
                while queue.enqueue(value).is_err() {
                    // Budget-full is backpressure: make room, not spin.
                    queue.dequeue();
                }
                while queue.dequeue().is_none() {
                    std::hint::spin_loop();
                }
            }
        }
    });
    assert_eq!(report.killed, vec![0], "the reserve-commit kill fired");
    assert!(
        report.blocked.is_empty(),
        "a death mid-allocation must not block survivors: {:?}",
        report.blocked
    );
    while queue.dequeue().is_some() {}
    assert_eq!(
        budget.reserved(),
        1,
        "after the drain only the dummy segment is resident — the killed \
         process's uncommitted reservation was credited back by unwinding"
    );
    assert!(budget.peak() <= LIMIT, "the bound held across the death");
    assert_eq!(budget.overruns(), 0, "no path overran the budget");
}

/// Every registered contender now meters its preallocated memory against
/// a shared [`MemBudget`]. The six node-arena algorithms force-reserve
/// one unit per node (`capacity + 1`, counting the dummy) for the queue's
/// lifetime and credit it all back on drop; the segment-based extensions
/// reserve segment by segment. Either way the residency is *observable*:
/// building any contender moves `reserved()`, and dropping it restores
/// the budget to empty.
#[test]
fn every_contender_meters_residency_against_a_shared_budget() {
    use ms_queues::Algorithm;
    let platform = NativePlatform::new();
    for alg in Algorithm::WITH_EXTENSIONS {
        let budget = Arc::new(MemBudget::new(&platform, 1_000));
        let queue = alg.build_with_budget(&platform, 16, Some(Arc::clone(&budget)));
        assert!(
            budget.reserved() > 0,
            "{alg}: building the queue must reserve budget units"
        );
        assert_eq!(
            budget.overruns(),
            0,
            "{alg}: a within-budget pool must not overrun"
        );
        // The queue still works while metered.
        queue.enqueue(7).unwrap();
        assert_eq!(queue.dequeue(), Some(7), "{alg} round trip under budget");
        let resident = budget.reserved();
        drop(queue);
        if matches!(alg, Algorithm::SegBatched | Algorithm::Sharded) {
            // Segment arenas credit units when segments are *freed*; the
            // still-resident initial segments ride out the drop.
            assert!(
                budget.reserved() <= resident,
                "{alg}: drop must not grow the reservation"
            );
        } else {
            assert_eq!(
                budget.reserved(),
                0,
                "{alg}: dropping the queue must credit every unit back"
            );
        }
    }
}

/// The paper's algorithms preallocate their free lists unconditionally,
/// so a pool larger than the budget is *recorded as an overrun* rather
/// than denied — the queue is built, the debt is visible.
#[test]
fn node_arena_contenders_record_overruns_instead_of_failing() {
    use ms_queues::Algorithm;
    let platform = NativePlatform::new();
    for alg in [
        Algorithm::SingleLock,
        Algorithm::MellorCrummey,
        Algorithm::Valois,
        Algorithm::NewTwoLock,
        Algorithm::PljNonBlocking,
        Algorithm::NewNonBlocking,
    ] {
        let budget = Arc::new(MemBudget::new(&platform, 4));
        let queue = alg.build_with_budget(&platform, 64, Some(Arc::clone(&budget)));
        assert!(
            budget.overruns() > 0,
            "{alg}: an over-budget preallocated pool must be metered as an overrun"
        );
        assert_eq!(
            budget.reserved(),
            65,
            "{alg}: the full pool (capacity + dummy) is resident regardless"
        );
        queue.enqueue(1).unwrap();
        assert_eq!(queue.dequeue(), Some(1));
        drop(queue);
        assert_eq!(budget.reserved(), 0, "{alg}: drop credits the debt back");
    }
}
