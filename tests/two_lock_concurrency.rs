//! The two-lock queue's defining claim (Section 2): separate head and
//! tail locks "allow complete concurrency between enqueues and dequeues",
//! while the single-lock queue serializes them. The deterministic
//! simulator makes this measurable as a sharp assertion rather than a
//! flaky timing test.

use std::sync::Arc;

use ms_queues::{Algorithm, Platform, SimConfig, Simulation};

const ITEMS: u64 = 400;

/// A pure producer/consumer pipeline: process 0 only enqueues, process 1
/// only dequeues, on separate simulated processors. The consumer pauses
/// briefly on empty (as any real consumer would) rather than hammering
/// the queue. Returns elapsed virtual time.
fn pipeline_elapsed(algorithm: Algorithm) -> u64 {
    let sim = Simulation::new(SimConfig {
        processors: 2,
        ..SimConfig::default()
    });
    let platform = sim.platform();
    let queue = algorithm.build(&platform, 4_096);
    sim.run({
        let queue = Arc::clone(&queue);
        move |info| {
            if info.pid == 0 {
                for i in 0..ITEMS {
                    while queue.enqueue(i).is_err() {}
                }
            } else {
                for _ in 0..ITEMS {
                    while queue.dequeue().is_none() {
                        platform.delay(500);
                    }
                }
            }
        }
    })
    .elapsed_ns
}

#[test]
fn two_lock_overlaps_enqueue_and_dequeue() {
    let two_lock = pipeline_elapsed(Algorithm::NewTwoLock);
    let single_lock = pipeline_elapsed(Algorithm::SingleLock);
    assert!(
        two_lock < single_lock,
        "two locks ({two_lock} ns) must overlap producer and consumer \
         better than one lock ({single_lock} ns)"
    );
}

#[test]
fn nonblocking_queue_also_overlaps() {
    let ms = pipeline_elapsed(Algorithm::NewNonBlocking);
    let single_lock = pipeline_elapsed(Algorithm::SingleLock);
    assert!(
        ms < single_lock,
        "MS queue ({ms} ns) must beat the single lock ({single_lock} ns) \
         on a producer/consumer pipeline"
    );
}

#[test]
fn pipeline_delivers_in_order() {
    // SPSC use of the MPMC queues must preserve order exactly.
    for algorithm in Algorithm::ALL {
        let sim = Simulation::new(SimConfig {
            processors: 2,
            ..SimConfig::default()
        });
        let platform = sim.platform();
        let queue = algorithm.build(&platform, 1_024);
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        sim.run({
            let queue = Arc::clone(&queue);
            let seen = Arc::clone(&seen);
            let platform = platform.clone();
            move |info| {
                if info.pid == 0 {
                    for i in 0..300_u64 {
                        while queue.enqueue(i).is_err() {}
                    }
                } else {
                    let mut local = Vec::new();
                    for _ in 0..300 {
                        loop {
                            if let Some(v) = queue.dequeue() {
                                local.push(v);
                                break;
                            }
                            platform.delay(500);
                        }
                    }
                    *seen.lock().unwrap() = local;
                }
            }
        });
        let seen = Arc::try_unwrap(seen).unwrap().into_inner().unwrap();
        let expected: Vec<u64> = (0..300).collect();
        assert_eq!(seen, expected, "{algorithm}: SPSC order");
    }
}
