//! Section 3.2 made mechanical: small concurrent histories recorded from
//! the real implementations are checked against the sequential FIFO
//! specification with the exhaustive Wing–Gong search; large histories get
//! the fast whole-history checks.

use std::sync::{Arc, Mutex};

use ms_queues::{
    is_linearizable_queue, schedule_sweep, Algorithm, NativePlatform, Recorder, SimConfig,
    Simulation,
};

use ms_queues::ConcurrentWordQueue;

/// Records a small burst of genuinely concurrent operations and checks
/// the exact history is linearizable. Repeated to sample many real
/// interleavings.
fn linearizable_small_windows(algorithm: Algorithm) {
    let platform = NativePlatform::new();
    linearizable_small_windows_with(&format!("{algorithm}"), || algorithm.build(&platform, 64));
}

/// The same check for any queue constructor (used for configurations the
/// [`Algorithm`] registry doesn't name, like a single-shard sharded queue).
fn linearizable_small_windows_with(name: &str, build: impl Fn() -> Arc<dyn ConcurrentWordQueue>) {
    for round in 0..30 {
        let queue = build();
        let recorder = Recorder::new();
        let mut handles = Vec::new();
        for t in 0..3_u64 {
            let queue = Arc::clone(&queue);
            let mut handle = recorder.handle(t as usize);
            handles.push(std::thread::spawn(move || {
                // 2 enqueues + 2 dequeues per thread = 12 ops per window:
                // well inside the exhaustive checker's comfort zone.
                for i in 0..2_u64 {
                    let value = (round << 16) | (t << 8) | i;
                    handle.enqueue(&*queue, value).unwrap();
                    handle.dequeue(&*queue);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let history = recorder.finish();
        assert!(
            history.check_queue_safety().is_empty(),
            "{name}: fast checks failed in round {round}"
        );
        assert!(
            is_linearizable_queue(history.events()),
            "{name}: history not linearizable in round {round}: {:?}",
            history.events()
        );
    }
}

/// Fast whole-history checks over a larger recorded run.
fn safe_large_history(algorithm: Algorithm) {
    let platform = NativePlatform::new();
    let queue = algorithm.build(&platform, 8_192);
    let recorder = Recorder::new();
    let mut handles = Vec::new();
    for t in 0..4_u64 {
        let queue = Arc::clone(&queue);
        let mut handle = recorder.handle(t as usize);
        handles.push(std::thread::spawn(move || {
            for i in 0..2_000_u64 {
                let value = (t << 32) | i;
                while handle.enqueue(&*queue, value).is_err() {
                    std::thread::yield_now();
                }
                handle.dequeue(&*queue);
            }
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }
    let history = recorder.finish();
    assert_eq!(history.len(), 4 * 4_000);
    let violations = history.check_queue_safety();
    assert!(
        violations.is_empty(),
        "{algorithm}: violations: {violations:?}"
    );
}

/// The same small-window check on the deterministic simulator, sampling
/// preemption-driven interleavings a host scheduler rarely produces. The
/// recorder's logical clock is host-level, so the recorded intervals are
/// the real-time order of the simulated execution. [`schedule_sweep`]
/// perturbs the deterministic schedule across 32 seeds, so each algorithm
/// is checked against 32 distinct (individually reproducible)
/// interleavings; on failure the sweep prints the seed to replay.
fn linearizable_small_windows_simulated(algorithm: Algorithm) {
    let base = SimConfig {
        processors: 3,
        quantum_ns: 60_000,
        ..SimConfig::default()
    };
    schedule_sweep(base, 32, |cfg| {
        let seed = cfg.seed;
        let sim = Simulation::new(cfg);
        let queue = algorithm.build(&sim.platform(), 64);
        let recorder = Recorder::new();
        let handles: Vec<_> = (0..3).map(|p| Some(recorder.handle(p))).collect();
        let handles = Arc::new(Mutex::new(handles));
        sim.run({
            let queue = Arc::clone(&queue);
            let handles = Arc::clone(&handles);
            move |info| {
                let mut handle = handles.lock().unwrap()[info.pid].take().unwrap();
                for i in 0..2_u64 {
                    let value = (info.pid as u64) << 8 | i;
                    handle.enqueue(&*queue, value).unwrap();
                    handle.dequeue(&*queue);
                }
            }
        });
        let history = recorder.finish();
        assert!(
            history.check_queue_safety().is_empty(),
            "{algorithm}: fast checks failed at seed {seed:#x}"
        );
        assert!(
            is_linearizable_queue(history.events()),
            "{algorithm}: simulated history not linearizable at seed \
             {seed:#x}: {:?}",
            history.events()
        );
    });
}

macro_rules! linearizability_tests {
    ($($name:ident => $alg:expr),+ $(,)?) => {
        $(
            mod $name {
                use super::*;

                #[test]
                fn small_windows_are_linearizable() {
                    linearizable_small_windows($alg);
                }

                #[test]
                fn simulated_windows_are_linearizable() {
                    linearizable_small_windows_simulated($alg);
                }

                #[test]
                fn large_history_passes_fast_checks() {
                    safe_large_history($alg);
                }
            }
        )+
    };
}

linearizability_tests! {
    single_lock => Algorithm::SingleLock,
    mellor_crummey => Algorithm::MellorCrummey,
    valois => Algorithm::Valois,
    new_two_lock => Algorithm::NewTwoLock,
    plj => Algorithm::PljNonBlocking,
    new_nonblocking => Algorithm::NewNonBlocking,
    seg_batched => Algorithm::SegBatched,
}

/// The sharded front-end is *relaxed*: only per-shard FIFO is promised, so
/// the whole-queue Wing–Gong check does not apply to a multi-shard
/// configuration (a sweep can return `None` from a momentarily nonempty
/// queue, and values from different shards interleave freely). What we
/// check instead:
///
/// 1. a **single-shard** composition is a linearizable queue — the
///    dispatch layer adds no reordering of its own;
/// 2. a **multi-shard** run satisfies the per-shard FIFO spec: each
///    producer is thread-affine, so all its values funnel through one
///    shard, and shard FIFO means every consumer must observe each
///    producer's values in strictly increasing sequence order; plus
///    exactly-once conservation and emptiness at quiescence.
mod sharded {
    use super::*;
    use ms_queues::WordShardedQueue;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn single_shard_composition_is_linearizable() {
        let platform = NativePlatform::new();
        linearizable_small_windows_with("sharded(1)", || {
            Arc::new(WordShardedQueue::with_shards(&platform, 64, 1))
        });
    }

    fn check_per_shard_fifo(consumed: &[Vec<u64>], producers: u64, per_producer: u64) {
        // Per consumer, per producer: sequence numbers strictly increase.
        for (c, seq) in consumed.iter().enumerate() {
            let mut last = vec![None::<u64>; producers as usize];
            for &v in seq {
                let producer = (v >> 32) as usize;
                let i = v & 0xffff_ffff;
                if let Some(prev) = last[producer] {
                    assert!(
                        i > prev,
                        "consumer {c} saw producer {producer} reordered: \
                         {i} after {prev}"
                    );
                }
                last[producer] = Some(i);
            }
        }
        // Exactly-once conservation across all consumers.
        let mut all: Vec<u64> = consumed.iter().flatten().copied().collect();
        all.sort_unstable();
        let mut want: Vec<u64> = (0..producers)
            .flat_map(|t| (0..per_producer).map(move |i| (t << 32) | i))
            .collect();
        want.sort_unstable();
        assert_eq!(all, want, "values lost or duplicated");
    }

    #[test]
    fn multi_shard_preserves_per_shard_fifo_natively() {
        let producers = 4_u64;
        let per_producer = 1_000_u64;
        let platform = NativePlatform::new();
        // 4 shards of 4096 slots each: even if every producer landed on
        // one shard, nothing spills to a neighbour, so each producer's
        // values stay on a single FIFO shard.
        let queue: Arc<WordShardedQueue<NativePlatform>> =
            Arc::new(WordShardedQueue::with_shards(&platform, 16_384, 4));
        let taken = Arc::new(AtomicU64::new(0));
        let total = producers * per_producer;

        let mut producer_handles = Vec::new();
        for t in 0..producers {
            let queue = Arc::clone(&queue);
            producer_handles.push(std::thread::spawn(move || {
                for i in 0..per_producer {
                    queue.enqueue((t << 32) | i).unwrap();
                }
            }));
        }
        let mut consumer_handles = Vec::new();
        for _ in 0..2 {
            let queue = Arc::clone(&queue);
            let taken = Arc::clone(&taken);
            consumer_handles.push(std::thread::spawn(move || {
                let mut local = Vec::new();
                while taken.load(Ordering::Relaxed) < total {
                    if let Some(v) = queue.dequeue() {
                        taken.fetch_add(1, Ordering::Relaxed);
                        local.push(v);
                    } else {
                        std::thread::yield_now();
                    }
                }
                local
            }));
        }
        for handle in producer_handles {
            handle.join().unwrap();
        }
        let consumed: Vec<Vec<u64>> = consumer_handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect();

        check_per_shard_fifo(&consumed, producers, per_producer);
        // Quiescent emptiness: with no producers left, a full sweep must
        // report the queue empty.
        assert_eq!(queue.dequeue(), None);
    }

    #[test]
    fn multi_shard_preserves_per_shard_fifo_simulated() {
        use ms_queues::{schedule_sweep, SimConfig, Simulation};

        let per_producer = 64_u64;
        let producers = 2_u64; // pids 0 and 1 produce; pids 2 and 3 consume
        let total = producers * per_producer;
        let base = SimConfig {
            processors: 4,
            ..SimConfig::default()
        };
        // 32 seeded schedules: each perturbs which producer/consumer the
        // virtual-time scheduler favours, so the per-shard FIFO promise is
        // checked across many distinct interleavings.
        schedule_sweep(base, 32, |cfg| {
            let sim = Simulation::new(cfg);
            let queue = Arc::new(WordShardedQueue::with_shards(&sim.platform(), 16_384, 4));
            let taken = Arc::new(AtomicU64::new(0));
            let consumed = Arc::new(Mutex::new(vec![Vec::new(), Vec::new()]));
            sim.run({
                let queue = Arc::clone(&queue);
                let taken = Arc::clone(&taken);
                let consumed = Arc::clone(&consumed);
                move |info| {
                    if (info.pid as u64) < producers {
                        let t = info.pid as u64;
                        for i in 0..per_producer {
                            queue.enqueue((t << 32) | i).unwrap();
                        }
                    } else {
                        let mut local = Vec::new();
                        while taken.load(Ordering::Relaxed) < total {
                            if let Some(v) = queue.dequeue() {
                                taken.fetch_add(1, Ordering::Relaxed);
                                local.push(v);
                            }
                        }
                        consumed.lock().unwrap()[info.pid - 2] = local;
                    }
                }
            });
            let consumed = Arc::try_unwrap(consumed).unwrap().into_inner().unwrap();
            check_per_shard_fifo(&consumed, producers, per_producer);
            assert_eq!(queue.dequeue(), None);
        });
    }
}
