//! Section 3.2 made mechanical: small concurrent histories recorded from
//! the real implementations are checked against the sequential FIFO
//! specification with the exhaustive Wing–Gong search; large histories get
//! the fast whole-history checks.

use std::sync::{Arc, Mutex};

use ms_queues::{
    is_linearizable_queue, Algorithm, NativePlatform, Recorder, SimConfig, Simulation,
};

/// Records a small burst of genuinely concurrent operations and checks
/// the exact history is linearizable. Repeated to sample many real
/// interleavings.
fn linearizable_small_windows(algorithm: Algorithm) {
    let platform = NativePlatform::new();
    for round in 0..30 {
        let queue = algorithm.build(&platform, 64);
        let recorder = Recorder::new();
        let mut handles = Vec::new();
        for t in 0..3_u64 {
            let queue = Arc::clone(&queue);
            let mut handle = recorder.handle(t as usize);
            handles.push(std::thread::spawn(move || {
                // 2 enqueues + 2 dequeues per thread = 12 ops per window:
                // well inside the exhaustive checker's comfort zone.
                for i in 0..2_u64 {
                    let value = (round << 16) | (t << 8) | i;
                    handle.enqueue(&*queue, value).unwrap();
                    handle.dequeue(&*queue);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let history = recorder.finish();
        assert!(
            history.check_queue_safety().is_empty(),
            "{algorithm}: fast checks failed in round {round}"
        );
        assert!(
            is_linearizable_queue(history.events()),
            "{algorithm}: history not linearizable in round {round}: {:?}",
            history.events()
        );
    }
}

/// Fast whole-history checks over a larger recorded run.
fn safe_large_history(algorithm: Algorithm) {
    let platform = NativePlatform::new();
    let queue = algorithm.build(&platform, 8_192);
    let recorder = Recorder::new();
    let mut handles = Vec::new();
    for t in 0..4_u64 {
        let queue = Arc::clone(&queue);
        let mut handle = recorder.handle(t as usize);
        handles.push(std::thread::spawn(move || {
            for i in 0..2_000_u64 {
                let value = (t << 32) | i;
                while handle.enqueue(&*queue, value).is_err() {
                    std::thread::yield_now();
                }
                handle.dequeue(&*queue);
            }
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }
    let history = recorder.finish();
    assert_eq!(history.len(), 4 * 4_000);
    let violations = history.check_queue_safety();
    assert!(
        violations.is_empty(),
        "{algorithm}: violations: {violations:?}"
    );
}

/// The same small-window check on the deterministic simulator, sampling
/// preemption-driven interleavings a host scheduler rarely produces. The
/// recorder's logical clock is host-level, so the recorded intervals are
/// the real-time order of the simulated execution.
fn linearizable_small_windows_simulated(algorithm: Algorithm) {
    for quantum_ns in [30_000_u64, 60_000, 100_000] {
        let sim = Simulation::new(SimConfig {
            processors: 3,
            quantum_ns,
            ..SimConfig::default()
        });
        let queue = algorithm.build(&sim.platform(), 64);
        let recorder = Recorder::new();
        let handles: Vec<_> = (0..3).map(|p| Some(recorder.handle(p))).collect();
        let handles = Arc::new(Mutex::new(handles));
        sim.run({
            let queue = Arc::clone(&queue);
            let handles = Arc::clone(&handles);
            move |info| {
                let mut handle = handles.lock().unwrap()[info.pid].take().unwrap();
                for i in 0..2_u64 {
                    let value = (info.pid as u64) << 8 | i;
                    handle.enqueue(&*queue, value).unwrap();
                    handle.dequeue(&*queue);
                }
            }
        });
        let history = recorder.finish();
        assert!(
            history.check_queue_safety().is_empty(),
            "{algorithm}: fast checks failed at quantum {quantum_ns}"
        );
        assert!(
            is_linearizable_queue(history.events()),
            "{algorithm}: simulated history not linearizable at quantum \
             {quantum_ns}: {:?}",
            history.events()
        );
    }
}

macro_rules! linearizability_tests {
    ($($name:ident => $alg:expr),+ $(,)?) => {
        $(
            mod $name {
                use super::*;

                #[test]
                fn small_windows_are_linearizable() {
                    linearizable_small_windows($alg);
                }

                #[test]
                fn simulated_windows_are_linearizable() {
                    linearizable_small_windows_simulated($alg);
                }

                #[test]
                fn large_history_passes_fast_checks() {
                    safe_large_history($alg);
                }
            }
        )+
    };
}

linearizability_tests! {
    single_lock => Algorithm::SingleLock,
    mellor_crummey => Algorithm::MellorCrummey,
    valois => Algorithm::Valois,
    new_two_lock => Algorithm::NewTwoLock,
    plj => Algorithm::PljNonBlocking,
    new_nonblocking => Algorithm::NewNonBlocking,
    seg_batched => Algorithm::SegBatched,
}
