//! Cross-crate MPMC correctness of every queue in the evaluation, on real
//! threads: conservation (nothing lost, nothing duplicated) and
//! per-producer FIFO order.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ms_queues::{Algorithm, NativePlatform};

const PRODUCERS: u64 = 3;
const CONSUMERS: u64 = 3;
const PER_PRODUCER: u64 = 4_000;

fn stress(algorithm: Algorithm) {
    let platform = NativePlatform::new();
    let queue = algorithm.build(&platform, 16_384);
    let consumed: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let taken = Arc::new(AtomicU64::new(0));
    let total = PRODUCERS * PER_PRODUCER;

    let mut handles = Vec::new();
    for producer in 0..PRODUCERS {
        let queue = Arc::clone(&queue);
        handles.push(std::thread::spawn(move || {
            for i in 0..PER_PRODUCER {
                let value = (producer << 32) | i;
                while queue.enqueue(value).is_err() {
                    std::thread::yield_now();
                }
            }
        }));
    }
    for _ in 0..CONSUMERS {
        let queue = Arc::clone(&queue);
        let consumed = Arc::clone(&consumed);
        let taken = Arc::clone(&taken);
        handles.push(std::thread::spawn(move || {
            let mut local = Vec::new();
            while taken.load(Ordering::SeqCst) < total {
                if let Some(value) = queue.dequeue() {
                    taken.fetch_add(1, Ordering::SeqCst);
                    local.push(value);
                } else {
                    std::thread::yield_now();
                }
            }
            consumed.lock().unwrap().extend(local);
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }

    let consumed = Arc::try_unwrap(consumed).unwrap().into_inner().unwrap();
    assert_eq!(consumed.len() as u64, total, "{algorithm}: count");
    let unique: HashSet<u64> = consumed.iter().copied().collect();
    assert_eq!(unique.len() as u64, total, "{algorithm}: duplicates");
    for producer in 0..PRODUCERS {
        for i in 0..PER_PRODUCER {
            assert!(
                unique.contains(&((producer << 32) | i)),
                "{algorithm}: lost value {producer}:{i}"
            );
        }
    }
    assert_eq!(queue.dequeue(), None, "{algorithm}: drained");
}

fn per_producer_order(algorithm: Algorithm) {
    let platform = NativePlatform::new();
    let queue = algorithm.build(&platform, 16_384);
    let mut handles = Vec::new();
    for producer in 0..PRODUCERS {
        let queue = Arc::clone(&queue);
        handles.push(std::thread::spawn(move || {
            for i in 0..PER_PRODUCER {
                while queue.enqueue((producer << 32) | i).is_err() {
                    std::thread::yield_now();
                }
            }
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }
    let mut last = vec![None::<u64>; PRODUCERS as usize];
    while let Some(value) = queue.dequeue() {
        let producer = (value >> 32) as usize;
        let seq = value & 0xffff_ffff;
        if let Some(prev) = last[producer] {
            assert!(seq > prev, "{algorithm}: producer {producer} reordered");
        }
        last[producer] = Some(seq);
    }
    for (producer, seen) in last.iter().enumerate() {
        assert_eq!(
            *seen,
            Some(PER_PRODUCER - 1),
            "{algorithm}: producer {producer} incomplete"
        );
    }
}

macro_rules! native_tests {
    ($($name:ident => $alg:expr),+ $(,)?) => {
        $(
            mod $name {
                use super::*;

                #[test]
                fn mpmc_conservation() {
                    stress($alg);
                }

                #[test]
                fn producer_fifo_order() {
                    per_producer_order($alg);
                }
            }
        )+
    };
}

native_tests! {
    single_lock => Algorithm::SingleLock,
    mellor_crummey => Algorithm::MellorCrummey,
    valois => Algorithm::Valois,
    new_two_lock => Algorithm::NewTwoLock,
    plj => Algorithm::PljNonBlocking,
    new_nonblocking => Algorithm::NewNonBlocking,
    seg_batched => Algorithm::SegBatched,
}
