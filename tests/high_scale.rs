//! The raised simulator ceiling exercised end to end: a full 32-seed
//! linearizability sweep at 64 simulated processors (the paper's machine
//! had 12). Histories this wide are far outside the exhaustive
//! Wing–Gong checker's reach, so the fast whole-history checks carry the
//! safety argument — no value invented, none lost, none reordered within
//! a producer, and emptiness observed only when the queue could have
//! been empty.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use ms_queues::{schedule_sweep, Algorithm, Recorder, SimConfig, Simulation};

/// Simulated processors: one process each, dedicated (Figure 3's model,
/// scaled past the paper's hardware).
const PROCESSORS: usize = 64;

/// Full sweep width demanded by the acceptance criteria.
const SEEDS: u64 = 32;

fn high_scale_sweep(algorithm: Algorithm) {
    let base = SimConfig {
        processors: PROCESSORS,
        ..SimConfig::default()
    };
    let start = Instant::now();
    schedule_sweep(base, SEEDS, |cfg| {
        let seed = cfg.seed;
        let sim = Simulation::new(cfg);
        let queue = algorithm.build(&sim.platform(), 1_024);
        let recorder = Recorder::new();
        let handles: Vec<_> = (0..PROCESSORS).map(|p| Some(recorder.handle(p))).collect();
        let handles = Arc::new(Mutex::new(handles));
        sim.run({
            let queue = Arc::clone(&queue);
            let handles = Arc::clone(&handles);
            move |info| {
                let mut handle = handles.lock().unwrap()[info.pid].take().unwrap();
                for i in 0..2_u64 {
                    let value = ((info.pid as u64) << 8) | i;
                    handle.enqueue(&*queue, value).unwrap();
                    handle.dequeue(&*queue);
                }
            }
        });
        let history = recorder.finish();
        assert!(
            history.check_queue_safety().is_empty(),
            "{algorithm}: whole-history checks failed at seed {seed:#x} \
             with {PROCESSORS} processors"
        );
    });
    eprintln!(
        "{algorithm}: {SEEDS}-seed sweep at {PROCESSORS}p completed in {:.3}s wall-clock",
        start.elapsed().as_secs_f64()
    );
}

#[test]
fn ms_queue_survives_a_full_sweep_at_64_processors() {
    high_scale_sweep(Algorithm::NewNonBlocking);
}

#[test]
fn two_lock_queue_survives_a_full_sweep_at_64_processors() {
    high_scale_sweep(Algorithm::NewTwoLock);
}
