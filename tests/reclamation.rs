//! Memory-reclamation safety of the heap queues and stack: under real
//! concurrency, every value is dropped exactly once — no leaks, no double
//! frees (the latter would crash; the former is counted).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ms_queues::{EpochMsQueue, LockFreeStack, MsQueue, SegConfig, SegQueue, TwoLockQueue};

struct Tracked {
    drops: Arc<AtomicU64>,
    payload: u64,
}

impl Tracked {
    fn new(drops: &Arc<AtomicU64>, payload: u64) -> Self {
        Tracked {
            drops: Arc::clone(drops),
            payload,
        }
    }
}

impl Drop for Tracked {
    fn drop(&mut self) {
        self.drops.fetch_add(1, Ordering::SeqCst);
    }
}

const PRODUCERS: u64 = 3;
const PER_PRODUCER: u64 = 5_000;

fn run_queue_reclamation<Q, E, D>(queue: Arc<Q>, enqueue: E, dequeue: D)
where
    Q: Send + Sync + 'static,
    E: Fn(&Q, Tracked) + Send + Sync + Copy + 'static,
    D: Fn(&Q) -> Option<Tracked> + Send + Sync + Copy + 'static,
{
    let drops = Arc::new(AtomicU64::new(0));
    let consumed = Arc::new(AtomicU64::new(0));
    let payload_sum = Arc::new(AtomicU64::new(0));
    let total = PRODUCERS * PER_PRODUCER;

    let mut handles = Vec::new();
    for producer in 0..PRODUCERS {
        let queue = Arc::clone(&queue);
        let drops = Arc::clone(&drops);
        handles.push(std::thread::spawn(move || {
            for i in 0..PER_PRODUCER {
                enqueue(
                    &queue,
                    Tracked::new(&drops, producer * PER_PRODUCER + i + 1),
                );
            }
        }));
    }
    for _ in 0..2 {
        let queue = Arc::clone(&queue);
        let consumed = Arc::clone(&consumed);
        let payload_sum = Arc::clone(&payload_sum);
        handles.push(std::thread::spawn(move || {
            while consumed.load(Ordering::SeqCst) < total {
                if let Some(value) = dequeue(&queue) {
                    payload_sum.fetch_add(value.payload, Ordering::SeqCst);
                    consumed.fetch_add(1, Ordering::SeqCst);
                } else {
                    std::hint::spin_loop();
                }
            }
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }

    assert_eq!(
        payload_sum.load(Ordering::SeqCst),
        (1..=total).sum::<u64>(),
        "value conservation"
    );
    // Every dequeued Tracked has been dropped by now (consumers drop on
    // the spot); none may have been dropped twice or leaked.
    assert_eq!(drops.load(Ordering::SeqCst), total, "drop-exactly-once");
}

#[test]
fn ms_queue_drops_every_value_exactly_once() {
    run_queue_reclamation(
        Arc::new(MsQueue::new()),
        |q: &MsQueue<Tracked>, v| q.enqueue(v),
        |q| q.dequeue(),
    );
}

#[test]
fn epoch_queue_drops_every_value_exactly_once() {
    run_queue_reclamation(
        Arc::new(EpochMsQueue::new()),
        |q: &EpochMsQueue<Tracked>, v| q.enqueue(v),
        |q| q.dequeue(),
    );
}

#[test]
fn two_lock_queue_drops_every_value_exactly_once() {
    run_queue_reclamation(
        Arc::new(TwoLockQueue::new()),
        |q: &TwoLockQueue<Tracked>, v| q.enqueue(v),
        |q| q.dequeue(),
    );
}

#[test]
fn seg_queue_drops_every_value_exactly_once() {
    // Small segments so reclamation runs thousands of times, not dozens.
    run_queue_reclamation(
        Arc::new(SegQueue::with_config(SegConfig {
            seg_size: 4,
            ..SegConfig::DEFAULT
        })),
        |q: &SegQueue<Tracked>, v| q.enqueue(v),
        |q| q.dequeue(),
    );
}

/// Drained segments must actually reach the hazard domain: with the reuse
/// pool disabled, every unlinked segment is retired (not leaked, not
/// pooled), and the domain eventually frees it.
#[test]
fn seg_queue_retires_drained_segments_through_hazard_domain() {
    let queue: SegQueue<u64> = SegQueue::with_config(SegConfig {
        seg_size: 4,
        pool_limit: 0,
        ..SegConfig::DEFAULT
    });
    for round in 0..50_u64 {
        for i in 0..16 {
            queue.enqueue(round * 16 + i);
        }
        for _ in 0..16 {
            assert!(queue.dequeue().is_some());
        }
    }
    let stats = queue.stats();
    assert_eq!(stats.segs_pooled, 0, "pool disabled, nothing may be pooled");
    assert!(
        stats.segs_retired >= 50,
        "50 rounds × 4 drained segments each must retire through the \
         hazard domain, got {}",
        stats.segs_retired
    );
}

#[test]
fn lock_free_stack_drops_every_value_exactly_once() {
    run_queue_reclamation(
        Arc::new(LockFreeStack::new()),
        |s: &LockFreeStack<Tracked>, v| s.push(v),
        |s| s.pop(),
    );
}

#[test]
fn queues_dropped_mid_flight_leak_nothing() {
    let drops = Arc::new(AtomicU64::new(0));
    {
        let queue = MsQueue::new();
        for i in 0..100 {
            queue.enqueue(Tracked::new(&drops, i));
        }
        for _ in 0..37 {
            drop(queue.dequeue());
        }
        // 63 values still inside; Drop must release them.
    }
    assert_eq!(drops.load(Ordering::SeqCst), 100);

    let drops = Arc::new(AtomicU64::new(0));
    {
        let stack = LockFreeStack::new();
        for i in 0..50 {
            stack.push(Tracked::new(&drops, i));
        }
        drop(stack.pop());
    }
    assert_eq!(drops.load(Ordering::SeqCst), 50);
}
