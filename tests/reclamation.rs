//! Memory-reclamation safety of the heap queues and stack: under real
//! concurrency, every value is dropped exactly once — no leaks, no double
//! frees (the latter would crash; the former is counted).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ms_queues::{EpochMsQueue, LockFreeStack, MsQueue, SegConfig, SegQueue, TwoLockQueue};

struct Tracked {
    drops: Arc<AtomicU64>,
    payload: u64,
}

impl Tracked {
    fn new(drops: &Arc<AtomicU64>, payload: u64) -> Self {
        Tracked {
            drops: Arc::clone(drops),
            payload,
        }
    }
}

impl Drop for Tracked {
    fn drop(&mut self) {
        self.drops.fetch_add(1, Ordering::SeqCst);
    }
}

const PRODUCERS: u64 = 3;
const PER_PRODUCER: u64 = 5_000;

fn run_queue_reclamation<Q, E, D>(queue: Arc<Q>, enqueue: E, dequeue: D)
where
    Q: Send + Sync + 'static,
    E: Fn(&Q, Tracked) + Send + Sync + Copy + 'static,
    D: Fn(&Q) -> Option<Tracked> + Send + Sync + Copy + 'static,
{
    let drops = Arc::new(AtomicU64::new(0));
    let consumed = Arc::new(AtomicU64::new(0));
    let payload_sum = Arc::new(AtomicU64::new(0));
    let total = PRODUCERS * PER_PRODUCER;

    let mut handles = Vec::new();
    for producer in 0..PRODUCERS {
        let queue = Arc::clone(&queue);
        let drops = Arc::clone(&drops);
        handles.push(std::thread::spawn(move || {
            for i in 0..PER_PRODUCER {
                enqueue(
                    &queue,
                    Tracked::new(&drops, producer * PER_PRODUCER + i + 1),
                );
            }
        }));
    }
    for _ in 0..2 {
        let queue = Arc::clone(&queue);
        let consumed = Arc::clone(&consumed);
        let payload_sum = Arc::clone(&payload_sum);
        handles.push(std::thread::spawn(move || {
            while consumed.load(Ordering::SeqCst) < total {
                if let Some(value) = dequeue(&queue) {
                    payload_sum.fetch_add(value.payload, Ordering::SeqCst);
                    consumed.fetch_add(1, Ordering::SeqCst);
                } else {
                    std::hint::spin_loop();
                }
            }
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }

    assert_eq!(
        payload_sum.load(Ordering::SeqCst),
        (1..=total).sum::<u64>(),
        "value conservation"
    );
    // Every dequeued Tracked has been dropped by now (consumers drop on
    // the spot); none may have been dropped twice or leaked.
    assert_eq!(drops.load(Ordering::SeqCst), total, "drop-exactly-once");
}

#[test]
fn ms_queue_drops_every_value_exactly_once() {
    run_queue_reclamation(
        Arc::new(MsQueue::new()),
        |q: &MsQueue<Tracked>, v| q.enqueue(v),
        |q| q.dequeue(),
    );
}

#[test]
fn epoch_queue_drops_every_value_exactly_once() {
    run_queue_reclamation(
        Arc::new(EpochMsQueue::new()),
        |q: &EpochMsQueue<Tracked>, v| q.enqueue(v),
        |q| q.dequeue(),
    );
}

#[test]
fn two_lock_queue_drops_every_value_exactly_once() {
    run_queue_reclamation(
        Arc::new(TwoLockQueue::new()),
        |q: &TwoLockQueue<Tracked>, v| q.enqueue(v),
        |q| q.dequeue(),
    );
}

#[test]
fn seg_queue_drops_every_value_exactly_once() {
    // Small segments so reclamation runs thousands of times, not dozens.
    run_queue_reclamation(
        Arc::new(SegQueue::with_config(SegConfig {
            seg_size: 4,
            ..SegConfig::DEFAULT
        })),
        |q: &SegQueue<Tracked>, v| q.enqueue(v),
        |q| q.dequeue(),
    );
}

/// Drained segments must actually reach the hazard domain: with the reuse
/// pool disabled, every unlinked segment is retired (not leaked, not
/// pooled), and the domain eventually frees it.
#[test]
fn seg_queue_retires_drained_segments_through_hazard_domain() {
    let queue: SegQueue<u64> = SegQueue::with_config(SegConfig {
        seg_size: 4,
        pool_limit: 0,
        ..SegConfig::DEFAULT
    });
    for round in 0..50_u64 {
        for i in 0..16 {
            queue.enqueue(round * 16 + i);
        }
        for _ in 0..16 {
            assert!(queue.dequeue().is_some());
        }
    }
    let stats = queue.stats();
    assert_eq!(stats.segs_pooled, 0, "pool disabled, nothing may be pooled");
    assert!(
        stats.segs_retired >= 50,
        "50 rounds × 4 drained segments each must retire through the \
         hazard domain, got {}",
        stats.segs_retired
    );
}

#[test]
fn lock_free_stack_drops_every_value_exactly_once() {
    run_queue_reclamation(
        Arc::new(LockFreeStack::new()),
        |s: &LockFreeStack<Tracked>, v| s.push(v),
        |s| s.pop(),
    );
}

/// Budget invariants under multi-queue churn: three queues share one
/// [`MemBudget`], worker threads hammer them through the fallible paths,
/// and at every step the number of live segments (in queues *or* pools —
/// pooled segments are still resident memory) stays within the limit.
/// After the churn, escalating reclaim (pool shrink, hazard flush) must
/// walk residency back down to the floor: one dummy segment per live
/// queue, then zero once the queues are gone.
#[test]
fn shared_budget_bounds_residency_across_churning_queues() {
    use ms_queues::hazard::GLOBAL_DOMAIN;
    use ms_queues::{MemBudget, NativePlatform};

    const LIMIT: u64 = 8;
    const QUEUES: usize = 3;
    let budget = Arc::new(MemBudget::new(&NativePlatform::new(), LIMIT));
    let queues: Arc<Vec<SegQueue<u64>>> = Arc::new(
        (0..QUEUES)
            .map(|_| {
                SegQueue::with_config_and_budget(
                    SegConfig {
                        seg_size: 2,
                        ..SegConfig::DEFAULT
                    },
                    Arc::clone(&budget),
                )
            })
            .collect(),
    );
    assert_eq!(budget.reserved(), QUEUES as u64, "one dummy per queue");

    let accepted = Arc::new(AtomicU64::new(0));
    let consumed = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for t in 0..3_u64 {
        let queues = Arc::clone(&queues);
        let budget = Arc::clone(&budget);
        let accepted = Arc::clone(&accepted);
        let consumed = Arc::clone(&consumed);
        handles.push(std::thread::spawn(move || {
            for i in 0..2_000_u64 {
                let q = &queues[((t + i) % QUEUES as u64) as usize];
                match q.try_enqueue((t << 32) | i) {
                    Ok(()) => {
                        accepted.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(_) => {
                        // Exhausted: make room instead of spinning.
                        if q.dequeue().is_some() {
                            consumed.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }
                if i % 5 == 0 && q.dequeue().is_some() {
                    consumed.fetch_add(1, Ordering::SeqCst);
                }
                let reserved = budget.reserved();
                assert!(
                    reserved <= LIMIT,
                    "live + pooled segments ({reserved}) exceeded the budget ({LIMIT})"
                );
            }
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }

    // Conservation: everything accepted is still retrievable.
    let mut drained = 0_u64;
    for q in queues.iter() {
        while q.dequeue().is_some() {
            drained += 1;
        }
    }
    assert_eq!(
        drained + consumed.load(Ordering::SeqCst),
        accepted.load(Ordering::SeqCst),
        "values lost or duplicated under budget churn"
    );
    assert!(budget.peak() <= LIMIT, "peak watermark respected the limit");
    assert_eq!(budget.overruns(), 0, "no infallible path overran the limit");

    // Drained process returns to the floor: shrink the pools (reclaimers
    // registered by `with_config_and_budget`) and flush hazard
    // retirements — including orphans from the exited workers.
    budget.reclaim();
    GLOBAL_DOMAIN.eager_scan();
    assert_eq!(
        budget.reserved(),
        QUEUES as u64,
        "after drain + reclaim only the dummies stay resident"
    );
    drop(queues);
    GLOBAL_DOMAIN.eager_scan();
    assert_eq!(budget.reserved(), 0, "dropping the queues frees the floor");
}

/// Queues created and dropped mid-test must return every unit they took:
/// each round builds a fresh queue on the same shared budget, drives it to
/// denial, then drops it with values still inside — the drop must release
/// both the values (exactly once) and the budget units.
#[test]
fn queues_created_and_dropped_mid_test_release_their_units() {
    use ms_queues::hazard::GLOBAL_DOMAIN;
    use ms_queues::{MemBudget, NativePlatform};

    const LIMIT: u64 = 4;
    let budget = Arc::new(MemBudget::new(&NativePlatform::new(), LIMIT));
    for round in 0..5_u64 {
        let drops = Arc::new(AtomicU64::new(0));
        let queue: SegQueue<Tracked> = SegQueue::with_config_and_budget(
            SegConfig {
                seg_size: 2,
                ..SegConfig::DEFAULT
            },
            Arc::clone(&budget),
        );
        let mut accepted = 0_u64;
        while queue.try_enqueue(Tracked::new(&drops, accepted)).is_ok() {
            accepted += 1;
        }
        assert_eq!(
            accepted,
            LIMIT * 2,
            "round {round}: {LIMIT} segments x 2 slots fill exactly"
        );
        assert!(budget.reserved() <= LIMIT, "round {round}");
        // Take a few out, leave the rest in-flight for Drop to handle.
        for _ in 0..3 {
            drop(queue.dequeue());
        }
        drop(queue);
        GLOBAL_DOMAIN.eager_scan();
        assert_eq!(
            drops.load(Ordering::SeqCst),
            accepted + 1, // the rejected probe value also dropped
            "round {round}: mid-flight values must drop exactly once"
        );
        assert_eq!(
            budget.reserved(),
            0,
            "round {round}: a dropped queue returns every unit"
        );
    }
    assert!(budget.peak() <= LIMIT);
    assert!(budget.denials() >= 5, "each round was driven to denial");
}

/// The two-lock queue preallocates its whole node pool (Figure 2), so a
/// budget-metered instance must force-reserve `capacity + 1` units up
/// front: a pool larger than the budget is an *overrun* (the constructor
/// stays infallible, as in the paper), and dropping the queue must credit
/// every unit back.
#[test]
fn two_lock_arena_is_metered_against_the_budget() {
    use ms_queues::{ConcurrentWordQueue, MemBudget, NativePlatform, WordTwoLockQueue};

    let platform = NativePlatform::new();
    // Pool fits: 7 + 1 dummy = 8 units of 8.
    let budget = Arc::new(MemBudget::new(&platform, 8));
    {
        let q = WordTwoLockQueue::with_capacity_and_budget(&platform, 7, Arc::clone(&budget));
        assert_eq!(budget.reserved(), 8, "capacity + dummy reserved up front");
        assert_eq!(budget.overruns(), 0, "a fitting pool is no overrun");
        q.enqueue(1).unwrap();
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(
            budget.reserved(),
            8,
            "churn reuses the pool; residency is constant"
        );
    }
    assert_eq!(budget.reserved(), 0, "drop credits the whole pool back");

    // Pool does not fit: 16 units against a limit of 4 must be recorded
    // as an overrun, not denied — construction still succeeds.
    let tiny = Arc::new(MemBudget::new(&platform, 4));
    {
        let q = WordTwoLockQueue::with_capacity_and_budget(&platform, 15, Arc::clone(&tiny));
        assert!(tiny.overruns() > 0, "over-budget pool counts as overrun");
        assert_eq!(tiny.reserved(), 16, "force_reserve still books the units");
        q.enqueue(9).unwrap();
        assert_eq!(q.dequeue(), Some(9), "the queue works regardless");
    }
    assert_eq!(tiny.reserved(), 0, "overrun units are still released");
    assert!(tiny.peak() >= 16);
}

/// The same metering through the registry's `build_with_budget` path and a
/// `MemBudget::global()`-style shared budget: assertions are lower bounds
/// (`>=`) because parallel tests may share the global budget.
#[test]
fn two_lock_budget_attaches_through_the_registry() {
    use ms_queues::{Algorithm, MemBudget, NativePlatform};

    let platform = NativePlatform::new();
    let budget = Arc::new(MemBudget::new(&platform, 1 << 20));
    let before = budget.reserved();
    let q = Algorithm::NewTwoLock.build_with_budget(&platform, 31, Some(Arc::clone(&budget)));
    assert!(
        budget.reserved() >= before + 32,
        "registry-built two-lock reserves its pool"
    );
    q.enqueue(5).unwrap();
    assert_eq!(q.dequeue(), Some(5));
    drop(q);
    assert_eq!(budget.reserved(), before, "registry path releases on drop");
}

/// **Reclamation survives the reclaimer's death.** The word-level segment
/// queue recycles a drained segment through a drop guard held across its
/// `seg:reclaim` fault point: a process killed mid-reclaim frees the
/// segment (and credits its budget unit) during the kill unwind, on the
/// dead process's post-mortem direct path. Under a tiny budget this is
/// load-bearing — a leaked segment would be a quarter of the whole
/// allowance — so the run must end at the dummy-only floor regardless.
#[test]
fn killed_reclaimer_still_frees_the_segment_under_a_tiny_budget() {
    use ms_queues::{
        ConcurrentWordQueue, FaultPlan, MemBudget, SimConfig, Simulation, WordSegQueue,
    };

    const LIMIT: u64 = 4;
    let sim = Simulation::with_faults(
        SimConfig {
            processors: 3,
            ..SimConfig::default()
        },
        FaultPlan::new().kill_at_label(0, "seg:reclaim", 0),
    );
    let platform = sim.platform();
    let budget = Arc::new(MemBudget::new(&platform, LIMIT));
    let queue = Arc::new(WordSegQueue::with_capacity_and_budget(
        &platform,
        4_096,
        Arc::clone(&budget),
    ));
    let report = sim.run({
        let queue = Arc::clone(&queue);
        move |info| {
            for i in 0..200_u64 {
                let value = ((info.pid as u64) << 40) | i;
                while queue.enqueue(value).is_err() {
                    queue.dequeue();
                }
                while queue.dequeue().is_none() {
                    std::hint::spin_loop();
                }
            }
        }
    });
    assert_eq!(report.killed, vec![0], "the reclaim-window kill fired");
    assert!(
        report.blocked.is_empty(),
        "death in the reclaim ladder blocks nobody: {:?}",
        report.blocked
    );
    while queue.dequeue().is_some() {}
    assert_eq!(
        budget.reserved(),
        1,
        "the victim's half-reclaimed segment must reach the free list via \
         its unwind, leaving only the dummy resident after the drain"
    );
    assert!(budget.peak() <= LIMIT, "the bound held across the death");
    assert_eq!(budget.overruns(), 0);
}

/// **Repair returns the discarded node to the arena.** A process killed
/// while holding the repairable single lock mid-enqueue (node allocated
/// and intent published, link not yet made) has its node discarded by
/// the repairing waiter — back onto the arena free list, not leaked.
/// Under a pool of 5 nodes (capacity 4 + dummy) a leak would be
/// immediately visible: the drained queue could never again hold its
/// full capacity, and the metered budget would misreport after drop.
#[test]
fn repair_discarded_node_returns_to_the_arena_and_budget() {
    use ms_queues::{
        ConcurrentWordQueue, FaultPlan, MemBudget, RepairableSingleLockQueue, SimConfig, Simulation,
    };

    let sim = Simulation::with_faults(
        SimConfig {
            processors: 3,
            watchdog_ns: 400_000_000,
            ..SimConfig::default()
        },
        FaultPlan::new().kill_at_label(0, "single-lock:enq:locked", 0),
    );
    let platform = sim.platform();
    let budget = Arc::new(MemBudget::new(&platform, 5));
    let queue = Arc::new(RepairableSingleLockQueue::with_capacity_and_budget(
        &platform,
        4,
        Arc::clone(&budget),
    ));
    assert_eq!(budget.reserved(), 5, "capacity + dummy reserved up front");
    let report = sim.run({
        let queue = Arc::clone(&queue);
        move |info| {
            for i in 0..20_u64 {
                let value = ((info.pid as u64) << 40) | i;
                while queue.enqueue(value).is_err() {
                    queue.dequeue();
                }
                while queue.dequeue().is_none() {
                    std::hint::spin_loop();
                }
            }
        }
    });
    assert_eq!(report.killed, vec![0], "the enqueue-window kill fired");
    assert!(
        report.blocked.is_empty(),
        "a waiter repaired the dead holder instead of wedging: {:?}",
        report.blocked
    );
    assert_eq!(report.repairs.len(), 1);
    assert_eq!(report.repairs[0].point, "single-lock:repair:enq-discard");
    while queue.dequeue().is_some() {}
    assert_eq!(
        budget.reserved(),
        5,
        "the pool is preallocated; churn, death, and repair keep residency constant"
    );
    // The discarded node must be back on the free list: the empty queue
    // accepts its full capacity again.
    for i in 0..4_u64 {
        queue.enqueue(i).expect("repair credited the node back");
    }
    assert!(queue.enqueue(99).is_err(), "capacity unchanged");
    while queue.dequeue().is_some() {}
    drop(queue);
    assert_eq!(budget.reserved(), 0, "drop credits the whole pool back");
    assert_eq!(budget.overruns(), 0);
}

#[test]
fn queues_dropped_mid_flight_leak_nothing() {
    let drops = Arc::new(AtomicU64::new(0));
    {
        let queue = MsQueue::new();
        for i in 0..100 {
            queue.enqueue(Tracked::new(&drops, i));
        }
        for _ in 0..37 {
            drop(queue.dequeue());
        }
        // 63 values still inside; Drop must release them.
    }
    assert_eq!(drops.load(Ordering::SeqCst), 100);

    let drops = Arc::new(AtomicU64::new(0));
    {
        let stack = LockFreeStack::new();
        for i in 0..50 {
            stack.push(Tracked::new(&drops, i));
        }
        drop(stack.pop());
    }
    assert_eq!(drops.load(Ordering::SeqCst), 50);
}
