//! Property-based tests: every queue implementation is sequentially
//! equivalent to the FIFO specification under arbitrary operation
//! sequences, and the core data words (tagged pointers, arena, rings)
//! uphold their invariants.

use ms_queues::linearize::SequentialQueue;
use ms_queues::platform::ConcurrentStack;
use ms_queues::{Algorithm, ConcurrentWordQueue, NativePlatform, Tagged};
use ms_queues::{LamportQueue, TreiberStack};
use proptest::prelude::*;

#[derive(Clone, Copy, Debug)]
enum Op {
    Enqueue(u64),
    Dequeue,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![(0u64..1_000_000).prop_map(Op::Enqueue), Just(Op::Dequeue),]
}

/// Single-threaded model equivalence: the implementation must agree with
/// the sequential specification on every operation's result.
fn check_model_equivalence(algorithm: Algorithm, ops: &[Op]) {
    let platform = NativePlatform::new();
    let queue = algorithm.build(&platform, 512);
    let mut spec = SequentialQueue::new();
    for (step, &op) in ops.iter().enumerate() {
        match op {
            Op::Enqueue(value) => {
                if spec.len() < 512 {
                    queue
                        .enqueue(value)
                        .unwrap_or_else(|e| panic!("{algorithm} step {step}: {e}"));
                    spec.enqueue(value);
                }
            }
            Op::Dequeue => {
                assert_eq!(
                    queue.dequeue(),
                    spec.dequeue(),
                    "{algorithm} diverged from spec at step {step}"
                );
            }
        }
    }
    // Drain and compare the remainder.
    loop {
        let (got, want) = (queue.dequeue(), spec.dequeue());
        assert_eq!(got, want, "{algorithm} diverged from spec during drain");
        if want.is_none() {
            break;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ms_nonblocking_matches_model(ops in prop::collection::vec(op_strategy(), 0..400)) {
        check_model_equivalence(Algorithm::NewNonBlocking, &ops);
    }

    #[test]
    fn two_lock_matches_model(ops in prop::collection::vec(op_strategy(), 0..400)) {
        check_model_equivalence(Algorithm::NewTwoLock, &ops);
    }

    #[test]
    fn single_lock_matches_model(ops in prop::collection::vec(op_strategy(), 0..400)) {
        check_model_equivalence(Algorithm::SingleLock, &ops);
    }

    #[test]
    fn mellor_crummey_matches_model(ops in prop::collection::vec(op_strategy(), 0..400)) {
        check_model_equivalence(Algorithm::MellorCrummey, &ops);
    }

    #[test]
    fn plj_matches_model(ops in prop::collection::vec(op_strategy(), 0..400)) {
        check_model_equivalence(Algorithm::PljNonBlocking, &ops);
    }

    #[test]
    fn valois_matches_model(ops in prop::collection::vec(op_strategy(), 0..400)) {
        check_model_equivalence(Algorithm::Valois, &ops);
    }

    #[test]
    fn seg_batched_matches_model(ops in prop::collection::vec(op_strategy(), 0..400)) {
        check_model_equivalence(Algorithm::SegBatched, &ops);
    }

    /// The heap SegQueue against the same model, with a segment size small
    /// enough that the op sequences constantly cross segment boundaries.
    #[test]
    fn heap_seg_queue_matches_model(ops in prop::collection::vec(op_strategy(), 0..400)) {
        use ms_queues::{SegConfig, SegQueue};
        let queue: SegQueue<u64> = SegQueue::with_config(SegConfig {
            seg_size: 4,
            ..SegConfig::DEFAULT
        });
        let mut spec = SequentialQueue::new();
        for &op in &ops {
            match op {
                Op::Enqueue(value) => {
                    queue.enqueue(value);
                    spec.enqueue(value);
                }
                Op::Dequeue => {
                    prop_assert_eq!(queue.dequeue(), spec.dequeue());
                }
            }
        }
        loop {
            let (got, want) = (queue.dequeue(), spec.dequeue());
            prop_assert_eq!(got, want);
            if want.is_none() {
                break;
            }
        }
    }

    #[test]
    fn lamport_ring_matches_model_with_bound(ops in prop::collection::vec(op_strategy(), 0..400)) {
        let platform = NativePlatform::new();
        let ring = LamportQueue::with_capacity(&platform, 16);
        let mut spec = SequentialQueue::new();
        for &op in &ops {
            match op {
                Op::Enqueue(value) => {
                    let got = ring.enqueue(value);
                    if spec.len() < 16 {
                        prop_assert!(got.is_ok());
                        spec.enqueue(value);
                    } else {
                        prop_assert!(got.is_err(), "full ring must reject");
                    }
                }
                Op::Dequeue => {
                    prop_assert_eq!(ring.dequeue(), spec.dequeue());
                }
            }
        }
    }

    #[test]
    fn treiber_stack_matches_vec_model(ops in prop::collection::vec(op_strategy(), 0..400)) {
        let platform = NativePlatform::new();
        let stack = TreiberStack::with_capacity(&platform, 256);
        let mut spec: Vec<u64> = Vec::new();
        for &op in &ops {
            match op {
                Op::Enqueue(value) => {
                    if spec.len() < 256 {
                        prop_assert!(stack.push(value).is_ok());
                        spec.push(value);
                    }
                }
                Op::Dequeue => {
                    prop_assert_eq!(stack.pop(), spec.pop());
                }
            }
        }
    }

    #[test]
    fn tagged_words_round_trip(index in 0u32..u32::MAX, tag in any::<u32>()) {
        let word = Tagged::new(index, tag);
        prop_assert_eq!(word.index(), index);
        prop_assert_eq!(word.tag(), tag);
        prop_assert_eq!(Tagged::from_raw(word.raw()), word);
        let bumped = word.with_index(index);
        prop_assert_eq!(bumped.tag(), tag.wrapping_add(1));
        prop_assert_eq!(bumped.index(), index);
    }

    #[test]
    fn tagged_words_with_distinct_histories_differ(
        index in 0u32..1000,
        tag_a in any::<u32>(),
        tag_b in any::<u32>(),
    ) {
        prop_assume!(tag_a != tag_b);
        prop_assert_ne!(Tagged::new(index, tag_a), Tagged::new(index, tag_b));
    }
}

/// Mixed per-op and bulk traffic for the batch-capable queues: arbitrary
/// interleavings of `enqueue`/`dequeue`/`enqueue_batch`/`dequeue_batch`
/// must stay sequentially equivalent to the FIFO spec (a batch of k is k
/// spec operations in slice order).
#[derive(Clone, Debug)]
enum BatchOp {
    Enqueue(u64),
    Dequeue,
    EnqueueBatch(Vec<u64>),
    DequeueBatch(usize),
}

fn batch_op_strategy() -> impl Strategy<Value = BatchOp> {
    prop_oneof![
        (0u64..1_000_000).prop_map(BatchOp::Enqueue),
        Just(BatchOp::Dequeue),
        prop::collection::vec(0u64..1_000_000, 0..40).prop_map(BatchOp::EnqueueBatch),
        (0usize..40).prop_map(BatchOp::DequeueBatch),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The word-level seg-batched queue through the trait's batch entry
    /// points: a successful `enqueue_batch` is the values in slice order,
    /// `dequeue_batch(max)` is a prefix of what the spec would hand out.
    #[test]
    fn word_seg_batch_ops_match_model(ops in prop::collection::vec(batch_op_strategy(), 0..200)) {
        let platform = NativePlatform::new();
        let queue = Algorithm::SegBatched.build(&platform, 2_048);
        let mut spec = SequentialQueue::new();
        let mut out = Vec::new();
        for op in &ops {
            match op {
                BatchOp::Enqueue(value) => {
                    if spec.len() < 1_024 {
                        queue.enqueue(*value).unwrap();
                        spec.enqueue(*value);
                    }
                }
                BatchOp::Dequeue => {
                    prop_assert_eq!(queue.dequeue(), spec.dequeue());
                }
                BatchOp::EnqueueBatch(values) => {
                    if spec.len() + values.len() < 1_024 {
                        queue.enqueue_batch(values).unwrap();
                        for &v in values {
                            spec.enqueue(v);
                        }
                    }
                }
                BatchOp::DequeueBatch(max) => {
                    out.clear();
                    let taken = queue.dequeue_batch(&mut out, *max);
                    prop_assert_eq!(taken, out.len());
                    prop_assert!(taken <= *max);
                    // Single-threaded, a batch dequeue must drain
                    // min(max, len) values in spec order.
                    prop_assert_eq!(taken, (*max).min(spec.len()));
                    for &got in &out {
                        prop_assert_eq!(Some(got), spec.dequeue());
                    }
                }
            }
        }
        loop {
            let (got, want) = (queue.dequeue(), spec.dequeue());
            prop_assert_eq!(got, want);
            if want.is_none() {
                break;
            }
        }
    }

    /// The heap `SegQueue` batch API against the same model, with 4-slot
    /// segments so batches constantly splice whole chains.
    #[test]
    fn heap_seg_batch_ops_match_model(ops in prop::collection::vec(batch_op_strategy(), 0..200)) {
        use ms_queues::{SegConfig, SegQueue};
        let queue: SegQueue<u64> = SegQueue::with_config(SegConfig {
            seg_size: 4,
            ..SegConfig::DEFAULT
        });
        let mut spec = SequentialQueue::new();
        let mut out = Vec::new();
        for op in &ops {
            match op {
                BatchOp::Enqueue(value) => {
                    queue.enqueue(*value);
                    spec.enqueue(*value);
                }
                BatchOp::Dequeue => {
                    prop_assert_eq!(queue.dequeue(), spec.dequeue());
                }
                BatchOp::EnqueueBatch(values) => {
                    queue.enqueue_batch(values);
                    for &v in values {
                        spec.enqueue(v);
                    }
                }
                BatchOp::DequeueBatch(max) => {
                    out.clear();
                    let taken = queue.dequeue_batch(&mut out, *max);
                    prop_assert_eq!(taken, out.len());
                    prop_assert_eq!(taken, (*max).min(spec.len()));
                    for &got in &out {
                        prop_assert_eq!(Some(got), spec.dequeue());
                    }
                }
            }
        }
        loop {
            let (got, want) = (queue.dequeue(), spec.dequeue());
            prop_assert_eq!(got, want);
            if want.is_none() {
                break;
            }
        }
    }

    /// `BatchFull` contract: a failed bulk enqueue has pushed exactly the
    /// reported prefix, in order, and the untouched suffix is retriable —
    /// for any batch size against any (tiny) queue capacity.
    #[test]
    fn batch_full_prefix_is_exact_and_suffix_retries(
        capacity in 1u32..24,
        total in 1usize..300,
    ) {
        use ms_queues::{BackoffConfig, WordSegQueue};
        let platform = NativePlatform::new();
        let queue =
            WordSegQueue::with_seg_size_and_backoff(&platform, capacity, 4, BackoffConfig::DEFAULT);
        let values: Vec<u64> = (0..total as u64).collect();
        let mut sent = 0usize;
        let mut received = Vec::with_capacity(total);
        let mut rest: &[u64] = &values;
        loop {
            match queue.enqueue_batch(rest) {
                Ok(()) => break,
                Err(e) => {
                    sent += e.pushed;
                    rest = &rest[e.pushed..];
                    prop_assert!(!rest.is_empty(), "Err with nothing left to push");
                    // Drain what made it in; the prefix must be exact.
                    while let Some(v) = queue.dequeue() {
                        received.push(v);
                    }
                    prop_assert_eq!(received.len(), sent);
                }
            }
        }
        while let Some(v) = queue.dequeue() {
            received.push(v);
        }
        prop_assert_eq!(received, values);
    }
}

/// The segment-boundary race: with 2-slot segments, every other operation
/// crosses a boundary, so enqueuers racing the append CAS and dequeuers
/// racing the unlink CAS constantly interleave with slot claims. FIFO per
/// producer and exactly-once delivery must survive it.
#[test]
fn seg_queue_boundary_race_preserves_fifo() {
    use ms_queues::{SegConfig, SegQueue};
    use std::sync::Arc;

    for _ in 0..10 {
        let queue: Arc<SegQueue<u64>> = Arc::new(SegQueue::with_config(SegConfig {
            seg_size: 2,
            ..SegConfig::DEFAULT
        }));
        let producers = 3_u64;
        let per_producer = 500_u64;
        let mut handles = Vec::new();
        for t in 0..producers {
            let queue = Arc::clone(&queue);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_producer {
                    queue.enqueue((t << 32) | i);
                }
            }));
        }
        let consumer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                let mut last = vec![None::<u64>; producers as usize];
                let mut seen = 0;
                while seen < producers * per_producer {
                    if let Some(v) = queue.dequeue() {
                        let producer = (v >> 32) as usize;
                        let seq = v & 0xffff_ffff;
                        if let Some(prev) = last[producer] {
                            assert!(seq > prev, "producer {producer} reordered");
                        }
                        last[producer] = Some(seq);
                        seen += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            })
        };
        for handle in handles {
            handle.join().unwrap();
        }
        consumer.join().unwrap();
        assert!(queue.is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arena conservation under arbitrary alloc/free traffic.
    #[test]
    fn arena_never_double_allocates(script in prop::collection::vec(any::<bool>(), 1..200)) {
        use ms_queues::arena::NodeArena;
        let platform = NativePlatform::new();
        let arena = NodeArena::new(&platform, 16);
        let mut held: Vec<u32> = Vec::new();
        for take in script {
            if take {
                if let Some(node) = arena.alloc() {
                    prop_assert!(!held.contains(&node), "double allocation");
                    held.push(node);
                }
            } else if let Some(node) = held.pop() {
                arena.free(node);
            }
        }
        // Everything still accounted for.
        let mut drained = held.len();
        while arena.alloc().is_some() {
            drained += 1;
        }
        prop_assert_eq!(drained, 16);
    }
}
